package faultsim

import (
	"context"
	"math/bits"

	"repro/internal/netlist"
)

// Detection records the first detection of a fault.
type Detection struct {
	Fault   netlist.Fault
	Pattern int // global pattern index across all batches fed so far
}

// FaultSim runs serial-fault, parallel-pattern stuck-at simulation with
// fault dropping: each batch first simulates the good machine once,
// then resimulates only the fanout cone of each still-undetected fault.
// With Workers > 1 the fault list is sharded into contiguous chunks
// evaluated concurrently, each worker on its own overlay; shard results
// are merged in shard order, so detections, first-detection pattern
// indices and coverage are byte-identical for any worker count.
type FaultSim struct {
	c       *netlist.Circuit
	good    *LogicSim
	pool    *overlayPool
	workers int
	ctx     context.Context

	remaining []netlist.Fault
	detected  []Detection
	seen      int // total patterns consumed
}

// NewFaultSim returns a fault simulator over the given target fault
// list (typically netlist.CollapsedFaults). It defaults to
// runtime.GOMAXPROCS(0) workers; use SetWorkers to override.
func NewFaultSim(c *netlist.Circuit, faults []netlist.Fault) *FaultSim {
	good := NewLogicSim(c)
	return &FaultSim{
		c:         c,
		good:      good,
		pool:      newOverlayPool(c, good),
		remaining: append([]netlist.Fault(nil), faults...),
	}
}

// SetWorkers fixes the number of fault-list shards evaluated
// concurrently per batch. n <= 0 restores the default of
// runtime.GOMAXPROCS(0). The returned receiver allows chaining off the
// constructor. Results are identical for every worker count.
func (fs *FaultSim) SetWorkers(n int) *FaultSim {
	if n < 0 {
		n = 0
	}
	fs.workers = n
	return fs
}

// SetContext attaches a cancellation context: SimulateBatch and
// RunCoverage return ctx.Err() at the next batch boundary once ctx is
// cancelled, leaving the detection state consistent (the interrupted
// batch is never partially merged). A nil ctx (the default) disables
// cancellation.
func (fs *FaultSim) SetContext(ctx context.Context) *FaultSim {
	fs.ctx = ctx
	return fs
}

// TotalFaults returns the size of the target fault list.
func (fs *FaultSim) TotalFaults() int { return len(fs.remaining) + len(fs.detected) }

// DetectedCount returns the number of faults detected so far.
func (fs *FaultSim) DetectedCount() int { return len(fs.detected) }

// Coverage returns detected / total fault coverage in [0,1].
func (fs *FaultSim) Coverage() float64 {
	total := fs.TotalFaults()
	if total == 0 {
		return 1
	}
	return float64(len(fs.detected)) / float64(total)
}

// Remaining returns the still-undetected faults.
func (fs *FaultSim) Remaining() []netlist.Fault {
	return append([]netlist.Fault(nil), fs.remaining...)
}

// Detections returns all recorded first detections in detection order.
func (fs *FaultSim) Detections() []Detection {
	return append([]Detection(nil), fs.detected...)
}

// PatternsSeen returns the number of patterns consumed so far.
func (fs *FaultSim) PatternsSeen() int { return fs.seen }

// SimulateBatch fault-simulates one pattern batch and returns the
// detections it produced. Detected faults are dropped from the target
// list.
func (fs *FaultSim) SimulateBatch(b Batch) ([]Detection, error) {
	if err := ctxErr(fs.ctx); err != nil {
		return nil, err
	}
	if err := fs.good.Apply(b); err != nil {
		return nil, err
	}
	valid := b.ValidMask()
	nw := shardWorkers(fs.workers, len(fs.remaining))
	ovs := fs.pool.take(nw)

	// Per-shard results, merged below in ascending shard order so the
	// outcome matches the serial fault-list sweep exactly.
	shardDet := make([][]Detection, nw)
	shardKept := make([][]netlist.Fault, nw)
	runShards(len(fs.remaining), nw, func(w, lo, hi int) {
		ov := ovs[w]
		var det []Detection
		var kept []netlist.Fault
		for _, f := range fs.remaining[lo:hi] {
			diff := ov.stuckDiff(f, valid)
			if diff != 0 {
				det = append(det, Detection{Fault: f, Pattern: fs.seen + bits.TrailingZeros64(diff)})
			} else {
				kept = append(kept, f)
			}
		}
		shardDet[w] = det
		shardKept[w] = kept
	})

	var newDet []Detection
	keptAll := fs.remaining[:0]
	for w := 0; w < nw; w++ {
		newDet = append(newDet, shardDet[w]...)
		keptAll = append(keptAll, shardKept[w]...)
	}
	fs.detected = append(fs.detected, newDet...)
	fs.remaining = keptAll
	fs.seen += b.N
	return newDet, nil
}

// OutputResponse returns, for fault f, the per-output difference masks
// under batch b (without mutating detection state). It is used to build
// diagnosis dictionaries: bit p of entry i says pattern p flips output
// i.
func (fs *FaultSim) OutputResponse(f netlist.Fault, b Batch) ([]uint64, error) {
	if err := fs.good.Apply(b); err != nil {
		return nil, err
	}
	ov := fs.pool.take(1)[0]
	ov.reset()
	ov.propagate(fs.c.Cone(ov.injectStuck(f)))
	return ov.perOutputDiff(b.ValidMask()), nil
}

// CoveragePoint is one (patterns consumed, coverage) sample recorded at
// batch granularity by RunCoverage.
type CoveragePoint struct {
	Patterns int
	Coverage float64
}

// PatternSource produces successive batches of input patterns.
type PatternSource interface {
	// NextBatch returns the next batch of up to n patterns.
	NextBatch(n int) Batch
}

// RunCoverage consumes patterns from src until limit patterns have been
// simulated (rounded up to batch size) or every fault is detected.
func (fs *FaultSim) RunCoverage(src PatternSource, limit int) ([]CoveragePoint, error) {
	var pts []CoveragePoint
	for fs.seen < limit && len(fs.remaining) > 0 {
		n := limit - fs.seen
		if n > 64 {
			n = 64
		}
		if _, err := fs.SimulateBatch(src.NextBatch(n)); err != nil {
			return nil, err
		}
		pts = append(pts, CoveragePoint{Patterns: fs.seen, Coverage: fs.Coverage()})
	}
	return pts, nil
}
