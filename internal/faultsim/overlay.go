package faultsim

import (
	"runtime"
	"sync"

	"repro/internal/netlist"
)

// overlay is the per-worker faulty-machine scratch state layered over a
// shared good-machine simulation: a sparse value overlay (faulty/isSet)
// with a touched list for O(cone) reset between faults. Every worker of
// a sharded simulation owns one overlay; the good-machine LogicSim is
// shared read-only while shards run.
type overlay struct {
	c       *netlist.Circuit
	good    *LogicSim
	faulty  []uint64
	isSet   []bool
	touched []int
	scratch []uint64
}

// newOverlay returns an overlay over the circuit's good machine.
func newOverlay(c *netlist.Circuit, good *LogicSim) *overlay {
	return &overlay{
		c:       c,
		good:    good,
		faulty:  make([]uint64, c.NumGates()),
		isSet:   make([]bool, c.NumGates()),
		scratch: make([]uint64, 8),
	}
}

// reset clears the overlay entries touched by the previous fault.
func (ov *overlay) reset() {
	for _, id := range ov.touched {
		ov.isSet[id] = false
	}
	ov.touched = ov.touched[:0]
}

func (ov *overlay) set(id int, v uint64) {
	if !ov.isSet[id] {
		ov.isSet[id] = true
		ov.touched = append(ov.touched, id)
	}
	ov.faulty[id] = v
}

func (ov *overlay) get(id int) uint64 {
	if ov.isSet[id] {
		return ov.faulty[id]
	}
	return ov.good.Value(id)
}

// injectStuck loads stuck-at fault f into the overlay and returns the
// cone root to propagate from. A stem fault forces the driver value; a
// pin (branch) fault is visible only to the reader gate, whose output
// is re-evaluated with the stuck value on that one pin.
func (ov *overlay) injectStuck(f netlist.Fault) int {
	stuckWord := uint64(0)
	if f.Stuck {
		stuckWord = ^uint64(0)
	}
	if f.Pin == netlist.StemPin {
		ov.set(f.Gate, stuckWord)
		return f.Gate
	}
	g := &ov.c.Gates[f.Gate]
	if len(g.Fanin) > len(ov.scratch) {
		ov.scratch = make([]uint64, len(g.Fanin))
	}
	in := ov.scratch[:len(g.Fanin)]
	for i, src := range g.Fanin {
		if i == f.Pin {
			in[i] = stuckWord
		} else {
			in[i] = ov.good.Value(src)
		}
	}
	ov.set(f.Gate, g.Type.EvalWords(in))
	return f.Gate
}

// propagate re-evaluates the given fanout cone (ascending level order)
// against the overlay, extending the overlay with every changed gate.
func (ov *overlay) propagate(cone []int) {
	for _, id := range cone {
		g := &ov.c.Gates[id]
		if len(g.Fanin) > len(ov.scratch) {
			ov.scratch = make([]uint64, len(g.Fanin))
		}
		in := ov.scratch[:len(g.Fanin)]
		changed := false
		for i, src := range g.Fanin {
			in[i] = ov.get(src)
			if ov.isSet[src] {
				changed = true
			}
		}
		if !changed {
			continue
		}
		ov.set(id, g.Type.EvalWords(in))
	}
}

// stuckDiff resets the overlay, injects stuck-at fault f, propagates
// its fanout cone and returns the OR over all outputs of the
// good-vs-faulty difference mask, restricted to valid patterns.
func (ov *overlay) stuckDiff(f netlist.Fault, valid uint64) uint64 {
	ov.reset()
	root := ov.injectStuck(f)
	ov.propagate(ov.c.Cone(root))
	return ov.outputDiffMask(valid)
}

// outputDiffMask ORs the good-vs-faulty difference over all outputs,
// masked to the valid patterns.
func (ov *overlay) outputDiffMask(valid uint64) uint64 {
	var acc uint64
	for _, id := range ov.c.Outputs {
		acc |= (ov.get(id) ^ ov.good.Value(id)) & valid
	}
	return acc
}

// perOutputDiff allocates and returns the per-output difference masks.
func (ov *overlay) perOutputDiff(valid uint64) []uint64 {
	out := make([]uint64, len(ov.c.Outputs))
	for i, id := range ov.c.Outputs {
		out[i] = (ov.get(id) ^ ov.good.Value(id)) & valid
	}
	return out
}

// overlayPool lazily grows a set of per-worker overlays over one shared
// good machine. It is the "shared worker pool" state of a simulator:
// overlay w is always handed to shard w, so a fault is evaluated by the
// same scratch arrays regardless of how other shards progress.
type overlayPool struct {
	c    *netlist.Circuit
	good *LogicSim
	ovs  []*overlay
}

func newOverlayPool(c *netlist.Circuit, good *LogicSim) *overlayPool {
	return &overlayPool{c: c, good: good}
}

// take grows the pool to n overlays and returns them. It must be
// called before shards launch — growth is not concurrency-safe.
func (p *overlayPool) take(n int) []*overlay {
	for len(p.ovs) < n {
		p.ovs = append(p.ovs, newOverlay(p.c, p.good))
	}
	return p.ovs[:n]
}

// minFaultsPerShard is the smallest shard worth a goroutine: below it
// the spawn/join overhead dominates the cone resimulation work.
const minFaultsPerShard = 32

// shardWorkers returns the number of shards to use for n faults given
// the configured worker count (0 or less means GOMAXPROCS).
func shardWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + minFaultsPerShard - 1) / minFaultsPerShard; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runShards splits n items into contiguous chunks, one per worker, and
// runs fn(worker, lo, hi) for each — concurrently when workers > 1.
// fn must only touch worker-local state plus the item range [lo, hi);
// shard w always covers the same range for a given (n, workers), and
// the caller merges shard results in ascending shard order, which is
// what keeps sharded runs byte-identical to serial ones.
func runShards(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 || n == 0 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
