package faultsim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/netlist"
)

// parallelTestCircuit is a random circuit large enough that every
// worker count in the determinism sweeps actually shards (its collapsed
// fault list is several hundred faults).
func parallelTestCircuit(seed int64) *netlist.Circuit {
	return netlist.Random(seed, netlist.RandomOptions{Inputs: 16, Gates: 300, Outputs: 12})
}

// feedBatches drives sim over several random batches from a fixed seed,
// returning per-batch detection counts so mid-run fault dropping is
// exercised and compared across worker counts.
func feedBatches(t *testing.T, nIn int, simulate func(Batch) int) []int {
	t.Helper()
	src := &randomSource{nIn: nIn, rng: rand.New(rand.NewSource(7))}
	var counts []int
	for i := 0; i < 6; i++ {
		counts = append(counts, simulate(src.NextBatch(64)))
	}
	return counts
}

// TestFaultSimParallelDeterminism: Workers=8 must produce byte-identical
// detections (fault, first-detection pattern index), remaining list and
// coverage to Workers=1, including the fault dropping between batches.
func TestFaultSimParallelDeterminism(t *testing.T) {
	c := parallelTestCircuit(11)
	faults := netlist.CollapsedFaults(c)
	if len(faults) < 4*minFaultsPerShard {
		t.Fatalf("fault list too small to shard: %d", len(faults))
	}
	serial := NewFaultSim(c, faults).SetWorkers(1)
	parallel := NewFaultSim(c, faults).SetWorkers(8)

	sCounts := feedBatches(t, c.NumInputs(), func(b Batch) int {
		d, err := serial.SimulateBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	})
	pCounts := feedBatches(t, c.NumInputs(), func(b Batch) int {
		d, err := parallel.SimulateBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	})
	if !reflect.DeepEqual(sCounts, pCounts) {
		t.Fatalf("per-batch detection counts differ: serial %v parallel %v", sCounts, pCounts)
	}
	if !reflect.DeepEqual(serial.Detections(), parallel.Detections()) {
		t.Fatal("detection lists differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(serial.Remaining(), parallel.Remaining()) {
		t.Fatal("remaining fault lists differ between Workers=1 and Workers=8")
	}
	if serial.Coverage() != parallel.Coverage() {
		t.Fatalf("coverage differs: %v vs %v", serial.Coverage(), parallel.Coverage())
	}
	if serial.Coverage() == 0 || serial.Coverage() == 1 {
		t.Fatalf("degenerate coverage %v cannot witness determinism", serial.Coverage())
	}
}

// TestFaultSimWorkerSweep checks every worker count from 1 to 2×cores
// against the serial reference on full coverage curves.
func TestFaultSimWorkerSweep(t *testing.T) {
	c := parallelTestCircuit(12)
	faults := netlist.CollapsedFaults(c)
	run := func(workers int) ([]CoveragePoint, []Detection) {
		fs := NewFaultSim(c, faults).SetWorkers(workers)
		pts, err := fs.RunCoverage(&randomSource{nIn: c.NumInputs(), rng: rand.New(rand.NewSource(3))}, 512)
		if err != nil {
			t.Fatal(err)
		}
		return pts, fs.Detections()
	}
	wantPts, wantDet := run(1)
	for _, w := range []int{2, 3, 4, 8, 16} {
		pts, det := run(w)
		if !reflect.DeepEqual(pts, wantPts) {
			t.Fatalf("Workers=%d coverage curve differs", w)
		}
		if !reflect.DeepEqual(det, wantDet) {
			t.Fatalf("Workers=%d detections differ", w)
		}
	}
}

// TestBridgeSimParallelDeterminism mirrors the stuck-at determinism
// check for the bridging model.
func TestBridgeSimParallelDeterminism(t *testing.T) {
	c := parallelTestCircuit(13)
	bridges := CandidateBridges(c, 200, 5)
	if len(bridges) < 2*minFaultsPerShard {
		t.Fatalf("bridge list too small to shard: %d", len(bridges))
	}
	serial := NewBridgeSim(c, bridges).SetWorkers(1)
	parallel := NewBridgeSim(c, bridges).SetWorkers(8)
	feedBatches(t, c.NumInputs(), func(b Batch) int {
		d, err := serial.SimulateBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	})
	feedBatches(t, c.NumInputs(), func(b Batch) int {
		d, err := parallel.SimulateBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	})
	if !reflect.DeepEqual(serial.Detections(), parallel.Detections()) {
		t.Fatal("bridge detection lists differ between Workers=1 and Workers=8")
	}
	if serial.Coverage() != parallel.Coverage() {
		t.Fatalf("bridge coverage differs: %v vs %v", serial.Coverage(), parallel.Coverage())
	}
}

// TestTransitionSimParallelDeterminism mirrors the stuck-at determinism
// check for the broadside transition model, whose launch/capture
// pairing additionally spans batch boundaries.
func TestTransitionSimParallelDeterminism(t *testing.T) {
	c := parallelTestCircuit(14)
	faults := AllTransitionFaults(c)
	if len(faults) < 4*minFaultsPerShard {
		t.Fatalf("transition fault list too small to shard: %d", len(faults))
	}
	serial := NewTransitionSim(c, faults).SetWorkers(1)
	parallel := NewTransitionSim(c, faults).SetWorkers(8)
	feedBatches(t, c.NumInputs(), func(b Batch) int {
		d, err := serial.SimulateBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	})
	feedBatches(t, c.NumInputs(), func(b Batch) int {
		d, err := parallel.SimulateBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return len(d)
	})
	if !reflect.DeepEqual(serial.Detections(), parallel.Detections()) {
		t.Fatal("transition detection lists differ between Workers=1 and Workers=8")
	}
	if serial.Coverage() != parallel.Coverage() {
		t.Fatalf("transition coverage differs: %v vs %v", serial.Coverage(), parallel.Coverage())
	}
}

// TestSimsConcurrentUnderRace runs all three simulators concurrently on
// a shared immutable circuit with default (GOMAXPROCS) workers. It
// exists for the CI -race job: any unsynchronized sharing inside the
// worker pool or across simulators trips the race detector here.
func TestSimsConcurrentUnderRace(t *testing.T) {
	c := parallelTestCircuit(15)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			src := &randomSource{nIn: c.NumInputs(), rng: rand.New(rand.NewSource(int64(kind)))}
			switch kind {
			case 0:
				fs := NewFaultSim(c, netlist.CollapsedFaults(c))
				for j := 0; j < 4; j++ {
					if _, err := fs.SimulateBatch(src.NextBatch(64)); err != nil {
						t.Error(err)
						return
					}
				}
			case 1:
				bs := NewBridgeSim(c, CandidateBridges(c, 120, 9))
				for j := 0; j < 4; j++ {
					if _, err := bs.SimulateBatch(src.NextBatch(64)); err != nil {
						t.Error(err)
						return
					}
				}
			default:
				ts := NewTransitionSim(c, AllTransitionFaults(c))
				for j := 0; j < 4; j++ {
					if _, err := ts.SimulateBatch(src.NextBatch(64)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestShardWorkersBounds pins the shard sizing policy: never more
// shards than pay for their goroutine, never fewer than one.
func TestShardWorkersBounds(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{1, 1000, 1},
		{4, 1000, 4},
		{4, 0, 1},
		{4, 1, 1},
		{4, minFaultsPerShard + 1, 2},
		{1000, 4 * minFaultsPerShard, 4},
	}
	for _, c := range cases {
		if got := shardWorkers(c.workers, c.n); got != c.want {
			t.Errorf("shardWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	if got := shardWorkers(0, 1<<20); got < 1 {
		t.Errorf("default workers = %d", got)
	}
}
