package faultsim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/netlist"
)

// BridgeKind is the electrical behavior of a two-net bridging defect
// (the paper's Section I: "unintended connections, or bridges, between
// neighboring signals in the circuit layout").
type BridgeKind int

const (
	// WiredAND pulls both nets to the AND of their driven values.
	WiredAND BridgeKind = iota
	// WiredOR pulls both nets to the OR of their driven values.
	WiredOR
	// DomA forces net B to follow net A (A's driver wins).
	DomA
	// DomB forces net A to follow net B.
	DomB
)

// String returns the bridge-kind mnemonic.
func (k BridgeKind) String() string {
	switch k {
	case WiredAND:
		return "wired-and"
	case WiredOR:
		return "wired-or"
	case DomA:
		return "dom-a"
	case DomB:
		return "dom-b"
	default:
		return fmt.Sprintf("BridgeKind(%d)", int(k))
	}
}

// Bridge is one bridging fault between the output nets of gates A and B.
type Bridge struct {
	A, B int
	Kind BridgeKind
}

// String renders like "g3~g7/wired-and".
func (b Bridge) String() string {
	return fmt.Sprintf("g%d~g%d/%s", b.A, b.B, b.Kind)
}

// faultyValues returns the bridged values of both nets given their
// driven values (64 patterns in parallel).
func (b Bridge) faultyValues(va, vb uint64) (fa, fb uint64) {
	switch b.Kind {
	case WiredAND:
		w := va & vb
		return w, w
	case WiredOR:
		w := va | vb
		return w, w
	case DomA:
		return va, va
	default: // DomB
		return vb, vb
	}
}

// CandidateBridges enumerates n plausible bridging sites for a circuit
// without layout information: random pairs of distinct gates on the
// same or adjacent topological level (a proxy for physical
// neighborhood), excluding pairs where one net lies in the other's
// fanout cone (such feedback bridges can oscillate and need a
// sequential model). All four electrical behaviors are cycled through.
func CandidateBridges(c *netlist.Circuit, n int, seed int64) []Bridge {
	rng := rand.New(rand.NewSource(seed))
	// Bucket gates by level.
	byLevel := make(map[int][]int)
	maxLevel := 0
	for _, g := range c.Gates {
		l := c.Level(g.ID)
		byLevel[l] = append(byLevel[l], g.ID)
		if l > maxLevel {
			maxLevel = l
		}
	}
	inCone := func(root, target int) bool {
		for _, g := range c.Cone(root) {
			if g == target {
				return true
			}
		}
		return false
	}
	seen := make(map[[2]int]bool)
	var out []Bridge
	for tries := 0; len(out) < n && tries < n*50; tries++ {
		l := rng.Intn(maxLevel + 1)
		candA := byLevel[l]
		lb := l
		if rng.Intn(2) == 1 && l < maxLevel {
			lb = l + 1
		}
		candB := byLevel[lb]
		if len(candA) == 0 || len(candB) == 0 {
			continue
		}
		a := candA[rng.Intn(len(candA))]
		b := candB[rng.Intn(len(candB))]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			continue
		}
		if inCone(a, b) || inCone(b, a) {
			continue
		}
		seen[key] = true
		out = append(out, Bridge{A: a, B: b, Kind: BridgeKind(len(out) % 4)})
	}
	return out
}

// BridgeSim runs parallel-pattern bridging fault simulation with fault
// dropping, analogous to FaultSim, including the same deterministic
// worker sharding of the bridge list.
type BridgeSim struct {
	c       *netlist.Circuit
	good    *LogicSim
	pool    *overlayPool
	workers int
	ctx     context.Context

	remaining []Bridge
	detected  []BridgeDetection
	seen      int
}

// BridgeDetection records the first detection of a bridge.
type BridgeDetection struct {
	Bridge  Bridge
	Pattern int
}

// NewBridgeSim returns a simulator over the target bridge list with the
// default worker count (runtime.GOMAXPROCS(0)).
func NewBridgeSim(c *netlist.Circuit, bridges []Bridge) *BridgeSim {
	good := NewLogicSim(c)
	return &BridgeSim{
		c:         c,
		good:      good,
		pool:      newOverlayPool(c, good),
		remaining: append([]Bridge(nil), bridges...),
	}
}

// SetWorkers fixes the shard count per batch; n <= 0 restores the
// GOMAXPROCS default. Results are identical for every worker count.
func (bs *BridgeSim) SetWorkers(n int) *BridgeSim {
	if n < 0 {
		n = 0
	}
	bs.workers = n
	return bs
}

// SetContext attaches a cancellation context checked at batch
// boundaries (see FaultSim.SetContext).
func (bs *BridgeSim) SetContext(ctx context.Context) *BridgeSim {
	bs.ctx = ctx
	return bs
}

// TotalBridges returns the size of the target list.
func (bs *BridgeSim) TotalBridges() int { return len(bs.remaining) + len(bs.detected) }

// Coverage returns detected / total.
func (bs *BridgeSim) Coverage() float64 {
	t := bs.TotalBridges()
	if t == 0 {
		return 1
	}
	return float64(len(bs.detected)) / float64(t)
}

// Detections returns the recorded first detections.
func (bs *BridgeSim) Detections() []BridgeDetection {
	return append([]BridgeDetection(nil), bs.detected...)
}

// SimulateBatch simulates one batch against the remaining bridges,
// dropping detected ones. Shard results merge in shard order, keeping
// any worker count byte-identical to the serial sweep.
func (bs *BridgeSim) SimulateBatch(b Batch) ([]BridgeDetection, error) {
	if err := ctxErr(bs.ctx); err != nil {
		return nil, err
	}
	if err := bs.good.Apply(b); err != nil {
		return nil, err
	}
	valid := b.ValidMask()
	nw := shardWorkers(bs.workers, len(bs.remaining))
	ovs := bs.pool.take(nw)

	shardDet := make([][]BridgeDetection, nw)
	shardKept := make([][]Bridge, nw)
	runShards(len(bs.remaining), nw, func(w, lo, hi int) {
		ov := ovs[w]
		var det []BridgeDetection
		var kept []Bridge
		for _, br := range bs.remaining[lo:hi] {
			diff := bridgeDiff(ov, br, valid)
			if diff != 0 {
				det = append(det, BridgeDetection{Bridge: br, Pattern: bs.seen + bits.TrailingZeros64(diff)})
			} else {
				kept = append(kept, br)
			}
		}
		shardDet[w] = det
		shardKept[w] = kept
	})

	var news []BridgeDetection
	keptAll := bs.remaining[:0]
	for w := 0; w < nw; w++ {
		news = append(news, shardDet[w]...)
		keptAll = append(keptAll, shardKept[w]...)
	}
	bs.detected = append(bs.detected, news...)
	bs.remaining = keptAll
	bs.seen += b.N
	return news, nil
}

// outputDiff computes the detection mask of a single bridge against
// the currently applied batch, on the pool's first overlay.
func (bs *BridgeSim) outputDiff(br Bridge, valid uint64) uint64 {
	return bridgeDiff(bs.pool.take(1)[0], br, valid)
}

// bridgeDiff injects the bridged values of both nets into the overlay,
// propagates the merged fanout cones and ORs the per-output difference
// masks.
func bridgeDiff(ov *overlay, br Bridge, valid uint64) uint64 {
	ov.reset()
	fa, fb := br.faultyValues(ov.good.Value(br.A), ov.good.Value(br.B))
	ov.set(br.A, fa)
	ov.set(br.B, fb)
	ov.propagate(mergeCones(ov.c, br.A, br.B))
	return ov.outputDiffMask(valid)
}

// mergeCones returns the union of both fanout cones in ascending level
// order.
func mergeCones(c *netlist.Circuit, a, b int) []int {
	ca, cb := c.Cone(a), c.Cone(b)
	seen := make(map[int]bool, len(ca)+len(cb))
	var out []int
	i, j := 0, 0
	less := func(x, y int) bool {
		if c.Level(x) != c.Level(y) {
			return c.Level(x) < c.Level(y)
		}
		return x < y
	}
	for i < len(ca) || j < len(cb) {
		var next int
		switch {
		case i == len(ca):
			next = cb[j]
			j++
		case j == len(cb):
			next = ca[i]
			i++
		case less(ca[i], cb[j]):
			next = ca[i]
			i++
		default:
			next = cb[j]
			j++
		}
		if !seen[next] {
			seen[next] = true
			out = append(out, next)
		}
	}
	return out
}
