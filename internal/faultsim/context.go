package faultsim

import "context"

// ctxErr reports whether an optional simulation context has been
// cancelled. Simulators check it at batch boundaries — the natural
// shard-group granularity — so a cancelled long-running grading run
// stops promptly without ever leaving partially merged detection state
// behind: a batch either completes (and merges in shard order) or never
// starts.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
