package faultsim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/netlist"
)

// TransitionFault is a gross-delay (transition) fault at a gate output:
// slow-to-rise or slow-to-fall. In the full-scan broadside model a
// capture pattern q observes the fault iff the net transitions in the
// required direction between patterns q−1 and q and the net's stale
// value propagates to an output under pattern q. The paper's remark
// that its diagnosis "is not limited to this [stuck-at] fault model"
// is exercised by this second model.
type TransitionFault struct {
	Gate int
	Rise bool // true = slow-to-rise, false = slow-to-fall
}

// String renders like "g5/str" or "g5/stf".
func (f TransitionFault) String() string {
	if f.Rise {
		return fmt.Sprintf("g%d/str", f.Gate)
	}
	return fmt.Sprintf("g%d/stf", f.Gate)
}

// AllTransitionFaults enumerates both polarities on every non-input
// gate output plus the (pseudo-)primary inputs — the standard
// transition fault universe on stems.
func AllTransitionFaults(c *netlist.Circuit) []TransitionFault {
	var out []TransitionFault
	for _, g := range c.Gates {
		out = append(out, TransitionFault{Gate: g.ID, Rise: true}, TransitionFault{Gate: g.ID, Rise: false})
	}
	return out
}

// TransitionDetection records the first detecting capture pattern.
type TransitionDetection struct {
	Fault   TransitionFault
	Pattern int // global index of the capture pattern
}

// TransitionSim runs broadside transition fault simulation over a
// pattern sequence: consecutive patterns form launch/capture pairs
// (pattern q pairs with q−1, including across batch boundaries). Like
// FaultSim it shards the fault list across workers with a
// deterministic shard-order merge.
type TransitionSim struct {
	c       *netlist.Circuit
	good    *LogicSim
	pool    *overlayPool
	workers int
	ctx     context.Context

	remaining []TransitionFault
	detected  []TransitionDetection
	seen      int

	havePrev bool
	prevBit  []uint64 // per gate: value of the last pattern of the previous batch (bit 0)
}

// NewTransitionSim returns a simulator over the target fault list with
// the default worker count (runtime.GOMAXPROCS(0)).
func NewTransitionSim(c *netlist.Circuit, faults []TransitionFault) *TransitionSim {
	good := NewLogicSim(c)
	return &TransitionSim{
		c:         c,
		good:      good,
		pool:      newOverlayPool(c, good),
		remaining: append([]TransitionFault(nil), faults...),
		prevBit:   make([]uint64, c.NumGates()),
	}
}

// SetWorkers fixes the shard count per batch; n <= 0 restores the
// GOMAXPROCS default. Results are identical for every worker count.
func (ts *TransitionSim) SetWorkers(n int) *TransitionSim {
	if n < 0 {
		n = 0
	}
	ts.workers = n
	return ts
}

// SetContext attaches a cancellation context checked at batch
// boundaries (see FaultSim.SetContext).
func (ts *TransitionSim) SetContext(ctx context.Context) *TransitionSim {
	ts.ctx = ctx
	return ts
}

// TotalFaults returns the target list size.
func (ts *TransitionSim) TotalFaults() int { return len(ts.remaining) + len(ts.detected) }

// Coverage returns detected / total.
func (ts *TransitionSim) Coverage() float64 {
	t := ts.TotalFaults()
	if t == 0 {
		return 1
	}
	return float64(len(ts.detected)) / float64(t)
}

// Detections returns the recorded first detections.
func (ts *TransitionSim) Detections() []TransitionDetection {
	return append([]TransitionDetection(nil), ts.detected...)
}

// SimulateBatch consumes the next patterns of the sequence. The first
// pattern of the very first batch has no launch partner and cannot
// detect anything.
func (ts *TransitionSim) SimulateBatch(b Batch) ([]TransitionDetection, error) {
	if err := ctxErr(ts.ctx); err != nil {
		return nil, err
	}
	if err := ts.good.Apply(b); err != nil {
		return nil, err
	}
	valid := b.ValidMask()
	// validPairs masks capture positions with a predecessor.
	validPairs := valid
	if !ts.havePrev {
		validPairs &^= 1
	}
	nw := shardWorkers(ts.workers, len(ts.remaining))
	ovs := ts.pool.take(nw)

	shardDet := make([][]TransitionDetection, nw)
	shardKept := make([][]TransitionFault, nw)
	runShards(len(ts.remaining), nw, func(w, lo, hi int) {
		ov := ovs[w]
		var det []TransitionDetection
		var kept []TransitionFault
		for _, f := range ts.remaining[lo:hi] {
			v := ts.good.Value(f.Gate)
			shifted := v<<1 | ts.prevBit[f.Gate]
			var act uint64
			if f.Rise {
				act = ^shifted & v
			} else {
				act = shifted & ^v
			}
			act &= validPairs
			if act == 0 {
				kept = append(kept, f)
				continue
			}
			// A slow transition leaves the stale value on the net during the
			// capture pattern: stuck-at-(¬new value) restricted to activated
			// captures.
			stuck := netlist.Fault{Gate: f.Gate, Pin: netlist.StemPin, Stuck: !f.Rise}
			d := ov.stuckDiff(stuck, act)
			if d != 0 {
				det = append(det, TransitionDetection{Fault: f, Pattern: ts.seen + bits.TrailingZeros64(d)})
			} else {
				kept = append(kept, f)
			}
		}
		shardDet[w] = det
		shardKept[w] = kept
	})

	var news []TransitionDetection
	keptAll := ts.remaining[:0]
	for w := 0; w < nw; w++ {
		news = append(news, shardDet[w]...)
		keptAll = append(keptAll, shardKept[w]...)
	}
	ts.detected = append(ts.detected, news...)
	ts.remaining = keptAll
	// Carry the last pattern's value into the next batch.
	last := uint(b.N - 1)
	for id := range ts.prevBit {
		ts.prevBit[id] = ts.good.Value(id) >> last & 1
	}
	ts.havePrev = true
	ts.seen += b.N
	return news, nil
}
