package faultsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// counterSource enumerates input patterns 0,1,2,... as binary counters,
// giving exhaustive coverage on small circuits.
type counterSource struct {
	nIn  int
	next uint64
}

func (s *counterSource) NextBatch(n int) Batch {
	if n > 64 {
		n = 64
	}
	words := make([]uint64, s.nIn)
	for p := 0; p < n; p++ {
		v := s.next
		s.next++
		for i := 0; i < s.nIn; i++ {
			if v>>uint(i)&1 == 1 {
				words[i] |= 1 << uint(p)
			}
		}
	}
	return Batch{Words: words, N: n}
}

// randomSource produces uniformly random batches from a fixed seed.
type randomSource struct {
	nIn int
	rng *rand.Rand
}

func (s *randomSource) NextBatch(n int) Batch {
	if n > 64 {
		n = 64
	}
	words := make([]uint64, s.nIn)
	for i := range words {
		words[i] = s.rng.Uint64()
	}
	return Batch{Words: words, N: n}
}

func TestBatchFromBools(t *testing.T) {
	b, err := BatchFromBools([][]bool{{true, false}, {false, true}, {true, true}})
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 3 || len(b.Words) != 2 {
		t.Fatalf("batch = %+v", b)
	}
	// Input 0: patterns 0 and 2 set -> 0b101; input 1: patterns 1,2 -> 0b110.
	if b.Words[0] != 0b101 || b.Words[1] != 0b110 {
		t.Fatalf("words = %b %b", b.Words[0], b.Words[1])
	}
	if b.ValidMask() != 0b111 {
		t.Fatalf("mask = %b", b.ValidMask())
	}
	if _, err := BatchFromBools(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := BatchFromBools([][]bool{{true}, {true, false}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
}

func TestValidMaskFull(t *testing.T) {
	if (Batch{N: 64}).ValidMask() != ^uint64(0) {
		t.Fatal("full batch mask wrong")
	}
}

// TestAdderOracle checks the logic simulator against integer addition.
func TestAdderOracle(t *testing.T) {
	c := netlist.RippleAdder(8)
	sim := NewLogicSim(c)
	f := func(a, b uint8, cin bool) bool {
		pattern := make([]bool, 17)
		for i := 0; i < 8; i++ {
			pattern[i] = a>>uint(i)&1 == 1
			pattern[8+i] = b>>uint(i)&1 == 1
		}
		pattern[16] = cin
		out, err := sim.ApplyBools(pattern)
		if err != nil {
			return false
		}
		sum := uint16(a) + uint16(b)
		if cin {
			sum++
		}
		for i := 0; i < 8; i++ {
			if out[i] != (sum>>uint(i)&1 == 1) {
				return false
			}
		}
		return out[8] == (sum>>8&1 == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsWrongWidth(t *testing.T) {
	sim := NewLogicSim(netlist.C17())
	if err := sim.Apply(Batch{Words: make([]uint64, 3), N: 1}); err == nil {
		t.Fatal("wrong-width batch accepted")
	}
}

// TestC17ExhaustiveCoverage verifies that exhaustive patterns detect all
// 22 collapsed faults of c17 (the circuit is fully testable).
func TestC17ExhaustiveCoverage(t *testing.T) {
	c := netlist.C17()
	fs := NewFaultSim(c, netlist.CollapsedFaults(c))
	src := &counterSource{nIn: 5}
	if _, err := fs.SimulateBatch(src.NextBatch(32)); err != nil {
		t.Fatal(err)
	}
	if fs.Coverage() != 1 {
		t.Fatalf("coverage = %v, remaining %v", fs.Coverage(), fs.Remaining())
	}
	if fs.DetectedCount() != 22 || fs.TotalFaults() != 22 {
		t.Fatalf("detected %d of %d", fs.DetectedCount(), fs.TotalFaults())
	}
}

// TestKnownFaultDetection hand-checks a single stuck-at fault on a
// 2-input AND: a/sa0 is detected exactly by pattern a=1,b=1.
func TestKnownFaultDetection(t *testing.T) {
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	bb := b.Input("b")
	g := b.Gate(netlist.And, "g", a, bb)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fault := netlist.Fault{Gate: a, Pin: netlist.StemPin, Stuck: false} // a sa0
	fs := NewFaultSim(c, []netlist.Fault{fault})
	// Patterns: 00, 01, 10, 11 — only 11 detects.
	batch, _ := BatchFromBools([][]bool{{false, false}, {false, true}, {true, false}, {true, true}})
	dets, err := fs.SimulateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].Pattern != 3 {
		t.Fatalf("detections = %+v, want single detection at pattern 3", dets)
	}
}

// TestPinFaultOnlyAffectsBranch checks that an input-pin (branch) fault
// does not corrupt the other reader of the same stem.
func TestPinFaultOnlyAffectsBranch(t *testing.T) {
	// s drives both g1 = BUF(s) and g2 = BUF(s). Branch fault on g1's pin
	// must flip only output 0.
	b := netlist.NewBuilder("branch")
	s := b.Input("s")
	g1 := b.Gate(netlist.Buf, "g1", s)
	g2 := b.Gate(netlist.Buf, "g2", s)
	b.Output(g1)
	b.Output(g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fault := netlist.Fault{Gate: g1, Pin: 0, Stuck: false}
	fs := NewFaultSim(c, nil)
	batch, _ := BatchFromBools([][]bool{{true}})
	resp, err := fs.OutputResponse(fault, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != 1 || resp[1] != 0 {
		t.Fatalf("response = %b,%b; want output0 flipped only", resp[0], resp[1])
	}
}

// TestFaultSimMatchesBruteForce compares the cone-based fault simulator
// with naive full faulty-machine resimulation on random circuits.
func TestFaultSimMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := netlist.Random(seed, netlist.RandomOptions{Inputs: 8, Gates: 60, Outputs: 6})
		faults := netlist.CollapsedFaults(c)
		src := &counterSource{nIn: 8}
		batch := src.NextBatch(64)

		fs := NewFaultSim(c, faults)
		fast := make(map[string]uint64)
		for _, f := range faults {
			resp, err := fs.OutputResponse(f, batch)
			if err != nil {
				t.Fatal(err)
			}
			var acc uint64
			for _, d := range resp {
				acc |= d
			}
			fast[f.String()] = acc
		}

		for _, f := range faults {
			want := bruteForceDiff(t, c, f, batch)
			if fast[f.String()] != want {
				t.Fatalf("seed %d fault %v: fast %b, brute %b", seed, f, fast[f.String()], want)
			}
		}
	}
}

// bruteForceDiff resimulates the faulty machine pattern by pattern with
// explicit value forcing.
func bruteForceDiff(t *testing.T, c *netlist.Circuit, f netlist.Fault, b Batch) uint64 {
	t.Helper()
	good := NewLogicSim(c)
	if err := good.Apply(b); err != nil {
		t.Fatal(err)
	}
	goodOut := good.OutputWords()

	var acc uint64
	for p := 0; p < b.N; p++ {
		vals := make(map[int]bool)
		for i, id := range c.Inputs {
			vals[id] = b.Words[i]>>uint(p)&1 == 1
		}
		// Stem fault forces the driver value after evaluation.
		if f.Pin == netlist.StemPin && c.Gates[f.Gate].Type == netlist.Input {
			vals[f.Gate] = f.Stuck
		}
		for _, id := range c.Order() {
			g := &c.Gates[id]
			in := make([]bool, len(g.Fanin))
			for i, src := range g.Fanin {
				in[i] = vals[src]
				if f.Pin != netlist.StemPin && id == f.Gate && i == f.Pin {
					in[i] = f.Stuck
				}
			}
			v := g.Type.Eval(in)
			if f.Pin == netlist.StemPin && id == f.Gate {
				v = f.Stuck
			}
			vals[id] = v
		}
		for i, id := range c.Outputs {
			gv := goodOut[i]>>uint(p)&1 == 1
			if vals[id] != gv {
				acc |= 1 << uint(p)
			}
		}
	}
	return acc
}

func TestRunCoverageMonotonic(t *testing.T) {
	c := netlist.Random(3, netlist.RandomOptions{Inputs: 16, Gates: 200, Outputs: 12})
	fs := NewFaultSim(c, netlist.CollapsedFaults(c))
	pts, err := fs.RunCoverage(&randomSource{nIn: 16, rng: rand.New(rand.NewSource(1))}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no coverage points")
	}
	prev := 0.0
	for _, p := range pts {
		if p.Coverage < prev {
			t.Fatalf("coverage decreased: %+v", pts)
		}
		prev = p.Coverage
	}
	if prev < 0.5 {
		t.Fatalf("random patterns reached only %.2f coverage", prev)
	}
	if fs.PatternsSeen() > 1024 {
		t.Fatalf("consumed %d patterns, limit 1024", fs.PatternsSeen())
	}
}

func TestDetectionIndicesGlobal(t *testing.T) {
	c := netlist.C17()
	fs := NewFaultSim(c, netlist.CollapsedFaults(c))
	src := &counterSource{nIn: 5}
	// Feed two batches of 16; detections in the second batch must have
	// pattern indices >= 16.
	if _, err := fs.SimulateBatch(src.NextBatch(16)); err != nil {
		t.Fatal(err)
	}
	second, err := fs.SimulateBatch(src.NextBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range second {
		if d.Pattern < 16 || d.Pattern >= 32 {
			t.Fatalf("second-batch detection has pattern %d", d.Pattern)
		}
	}
}
