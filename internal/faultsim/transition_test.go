package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestTransitionFaultStrings(t *testing.T) {
	if (TransitionFault{Gate: 5, Rise: true}).String() != "g5/str" {
		t.Fatal("str wrong")
	}
	if (TransitionFault{Gate: 5}).String() != "g5/stf" {
		t.Fatal("stf wrong")
	}
}

func TestAllTransitionFaultsCount(t *testing.T) {
	c := netlist.C17()
	if got := len(AllTransitionFaults(c)); got != 22 { // 11 gates × 2
		t.Fatalf("faults = %d", got)
	}
}

// TestTransitionHandComputed: single buffer a→y. Slow-to-rise at the
// input is detected exactly at a 0→1 pattern pair.
func TestTransitionHandComputed(t *testing.T) {
	nb := netlist.NewBuilder("buf")
	a := nb.Input("a")
	nb.Output(nb.Gate(netlist.Buf, "y", a))
	c, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTransitionSim(c, []TransitionFault{{Gate: a, Rise: true}, {Gate: a, Rise: false}})
	// Sequence: 0, 1, 1, 0 — rise at capture 1, fall at capture 3.
	batch, _ := BatchFromBools([][]bool{{false}, {true}, {true}, {false}})
	dets, err := ts.SimulateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 {
		t.Fatalf("detections = %+v", dets)
	}
	for _, d := range dets {
		if d.Fault.Rise && d.Pattern != 1 {
			t.Fatalf("rise detected at %d", d.Pattern)
		}
		if !d.Fault.Rise && d.Pattern != 3 {
			t.Fatalf("fall detected at %d", d.Pattern)
		}
	}
	if ts.Coverage() != 1 {
		t.Fatalf("coverage = %v", ts.Coverage())
	}
}

// TestFirstPatternCannotDetect: without a launch partner, the very
// first pattern of the sequence never detects a transition fault.
func TestFirstPatternCannotDetect(t *testing.T) {
	nb := netlist.NewBuilder("buf")
	a := nb.Input("a")
	nb.Output(nb.Gate(netlist.Buf, "y", a))
	c, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTransitionSim(c, []TransitionFault{{Gate: a, Rise: true}})
	batch, _ := BatchFromBools([][]bool{{true}}) // a single 1, no predecessor
	dets, err := ts.SimulateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Fatalf("phantom detection: %+v", dets)
	}
	// The carried value makes the next batch's first pattern a valid
	// capture: 1 -> 0 detects the fall fault.
	ts2 := NewTransitionSim(c, []TransitionFault{{Gate: a, Rise: false}})
	b1, _ := BatchFromBools([][]bool{{true}})
	if _, err := ts2.SimulateBatch(b1); err != nil {
		t.Fatal(err)
	}
	b2, _ := BatchFromBools([][]bool{{false}})
	dets, err = ts2.SimulateBatch(b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].Pattern != 1 {
		t.Fatalf("cross-batch pair missed: %+v", dets)
	}
}

// TestTransitionMatchesBruteForce validates against an independent
// two-pattern resimulation with the stale value forced.
func TestTransitionMatchesBruteForce(t *testing.T) {
	c := netlist.Random(17, netlist.RandomOptions{Inputs: 8, Gates: 50, Outputs: 5})
	faults := AllTransitionFaults(c)
	src := &counterSource{nIn: 8}
	batch := src.NextBatch(64)

	// Fast path: detection masks per fault within one batch.
	fastDet := make(map[string]int)
	ts := NewTransitionSim(c, faults)
	dets, err := ts.SimulateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		fastDet[d.Fault.String()] = d.Pattern
	}

	for _, f := range faults {
		want := bruteForceTransition(t, c, f, batch)
		got, ok := fastDet[f.String()]
		if !ok {
			got = -1
		}
		if got != want {
			t.Fatalf("fault %v: fast %d brute %d", f, got, want)
		}
	}
}

// bruteForceTransition returns the first capture index detecting f, or
// -1: for each pair (q−1, q), resimulate pattern q with f.Gate forced
// to its value under q−1 whenever the activation direction matches.
func bruteForceTransition(t *testing.T, c *netlist.Circuit, f TransitionFault, b Batch) int {
	t.Helper()
	evalAll := func(p int, force int, forceVal bool) map[int]bool {
		vals := make(map[int]bool)
		for i, id := range c.Inputs {
			vals[id] = b.Words[i]>>uint(p)&1 == 1
		}
		if force >= 0 {
			vals[force] = forceVal
		}
		for _, id := range c.Order() {
			if id == force {
				continue
			}
			g := &c.Gates[id]
			in := make([]bool, len(g.Fanin))
			for i, src := range g.Fanin {
				in[i] = vals[src]
			}
			vals[id] = g.Type.Eval(in)
		}
		return vals
	}
	for q := 1; q < b.N; q++ {
		prev := evalAll(q-1, -1, false)
		cur := evalAll(q, -1, false)
		vPrev, vCur := prev[f.Gate], cur[f.Gate]
		if f.Rise && !(vPrev == false && vCur == true) {
			continue
		}
		if !f.Rise && !(vPrev == true && vCur == false) {
			continue
		}
		faulty := evalAll(q, f.Gate, vPrev)
		for _, id := range c.Outputs {
			if faulty[id] != cur[id] {
				return q
			}
		}
	}
	return -1
}

// TestTransitionCoverageBelowStuckAt: random patterns cover fewer
// transition faults than stuck-at faults on the same circuit (each
// transition needs an activation pair plus propagation).
func TestTransitionCoverageBelowStuckAt(t *testing.T) {
	c := netlist.ScanCUT(12, 6, 8, 4)
	rng := rand.New(rand.NewSource(2))
	src := &randomSource{nIn: c.NumInputs(), rng: rng}

	ts := NewTransitionSim(c, AllTransitionFaults(c))
	fs := NewFaultSim(c, netlist.CollapsedFaults(c))
	for ts.seen < 256 {
		b := src.NextBatch(64)
		if _, err := ts.SimulateBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.SimulateBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if ts.Coverage() <= 0.2 {
		t.Fatalf("transition coverage %.2f implausibly low", ts.Coverage())
	}
	if ts.Coverage() >= fs.Coverage() {
		t.Fatalf("transition coverage %.2f not below stuck-at %.2f", ts.Coverage(), fs.Coverage())
	}
}
