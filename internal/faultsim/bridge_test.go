package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestBridgeKindStrings(t *testing.T) {
	if WiredAND.String() != "wired-and" || DomB.String() != "dom-b" {
		t.Fatal("kind strings wrong")
	}
	if (Bridge{A: 3, B: 7, Kind: WiredOR}).String() != "g3~g7/wired-or" {
		t.Fatal("bridge string wrong")
	}
}

func TestBridgeFaultyValues(t *testing.T) {
	va, vb := uint64(0b1100), uint64(0b1010)
	cases := []struct {
		kind   BridgeKind
		fa, fb uint64
	}{
		{WiredAND, 0b1000, 0b1000},
		{WiredOR, 0b1110, 0b1110},
		{DomA, 0b1100, 0b1100},
		{DomB, 0b1010, 0b1010},
	}
	for _, c := range cases {
		fa, fb := (Bridge{Kind: c.kind}).faultyValues(va, vb)
		if fa != c.fa || fb != c.fb {
			t.Fatalf("%v: %b,%b want %b,%b", c.kind, fa, fb, c.fa, c.fb)
		}
	}
}

// twoBufCircuit: two independent buffer paths a->y0, b->y1, so a bridge
// between the inputs has a fully predictable effect.
func twoBufCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	nb := netlist.NewBuilder("twobuf")
	a := nb.Input("a")
	b := nb.Input("b")
	nb.Output(nb.Gate(netlist.Buf, "y0", a))
	nb.Output(nb.Gate(netlist.Buf, "y1", b))
	c, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBridgeDetectionHandComputed(t *testing.T) {
	c := twoBufCircuit(t)
	// Wired-AND between the two inputs: detectable whenever a != b.
	bridges := []Bridge{{A: 0, B: 1, Kind: WiredAND}}
	bs := NewBridgeSim(c, bridges)
	// Patterns: 00, 01, 10, 11 — detection at pattern 1 (a=0,b=1: y1
	// reads 0 instead of 1).
	batch, err := BatchFromBools([][]bool{{false, false}, {false, true}, {true, false}, {true, true}})
	if err != nil {
		t.Fatal(err)
	}
	dets, err := bs.SimulateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].Pattern != 1 {
		t.Fatalf("detections = %+v", dets)
	}
	if bs.Coverage() != 1 || bs.TotalBridges() != 1 {
		t.Fatalf("coverage = %v", bs.Coverage())
	}
}

func TestDominantBridgeDirectionality(t *testing.T) {
	c := twoBufCircuit(t)
	// DomA: only y1 (driven by B's net) can be wrong.
	bs := NewBridgeSim(c, nil)
	batch, _ := BatchFromBools([][]bool{{true, false}})
	if err := bs.good.Apply(batch); err != nil {
		t.Fatal(err)
	}
	diff := bs.outputDiff(Bridge{A: 0, B: 1, Kind: DomA}, batch.ValidMask())
	if diff != 1 {
		t.Fatalf("diff = %b, want detection", diff)
	}
	// With equal values no bridge is observable.
	batch, _ = BatchFromBools([][]bool{{true, true}})
	if err := bs.good.Apply(batch); err != nil {
		t.Fatal(err)
	}
	for k := WiredAND; k <= DomB; k++ {
		if d := bs.outputDiff(Bridge{A: 0, B: 1, Kind: k}, batch.ValidMask()); d != 0 {
			t.Fatalf("%v visible on equal values: %b", k, d)
		}
	}
}

// TestBridgeSimMatchesBruteForce validates the cone-merged simulation
// against full two-net forcing resimulation.
func TestBridgeSimMatchesBruteForce(t *testing.T) {
	c := netlist.Random(9, netlist.RandomOptions{Inputs: 8, Gates: 60, Outputs: 6})
	bridges := CandidateBridges(c, 24, 3)
	if len(bridges) < 8 {
		t.Fatalf("only %d candidate bridges", len(bridges))
	}
	src := &counterSource{nIn: 8}
	batch := src.NextBatch(64)
	bs := NewBridgeSim(c, nil)
	if err := bs.good.Apply(batch); err != nil {
		t.Fatal(err)
	}
	for _, br := range bridges {
		fast := bs.outputDiff(br, batch.ValidMask())
		want := bruteForceBridgeDiff(t, c, br, batch)
		if fast != want {
			t.Fatalf("bridge %v: fast %b brute %b", br, fast, want)
		}
	}
}

// bruteForceBridgeDiff resimulates pattern by pattern in two phases:
// first the driven (good) values of both nets, then a full faulty
// re-evaluation with the bridged values forced onto A and B for every
// reader. This matches the simulator's model and is valid because
// candidate bridges exclude cone relationships between A and B.
func bruteForceBridgeDiff(t *testing.T, c *netlist.Circuit, br Bridge, b Batch) uint64 {
	t.Helper()
	good := NewLogicSim(c)
	if err := good.Apply(b); err != nil {
		t.Fatal(err)
	}
	goodOut := good.OutputWords()
	var acc uint64
	for p := 0; p < b.N; p++ {
		// Phase 1: driven values (plain good simulation).
		driven := make(map[int]bool)
		for i, id := range c.Inputs {
			driven[id] = b.Words[i]>>uint(p)&1 == 1
		}
		for _, id := range c.Order() {
			g := &c.Gates[id]
			in := make([]bool, len(g.Fanin))
			for i, f := range g.Fanin {
				in[i] = driven[f]
			}
			driven[id] = g.Type.Eval(in)
		}
		fa, fb := br.faultyValues(boolWord(driven[br.A]), boolWord(driven[br.B]))

		// Phase 2: re-evaluate with A and B forced to the bridged values.
		vals := make(map[int]bool)
		for i, id := range c.Inputs {
			vals[id] = b.Words[i]>>uint(p)&1 == 1
		}
		vals[br.A] = fa&1 == 1
		vals[br.B] = fb&1 == 1
		for _, id := range c.Order() {
			if id == br.A || id == br.B {
				continue // forced
			}
			g := &c.Gates[id]
			in := make([]bool, len(g.Fanin))
			for i, f := range g.Fanin {
				in[i] = vals[f]
			}
			vals[id] = g.Type.Eval(in)
		}
		for i, id := range c.Outputs {
			gv := goodOut[i]>>uint(p)&1 == 1
			if vals[id] != gv {
				acc |= 1 << uint(p)
			}
		}
	}
	return acc
}

func boolWord(b bool) uint64 {
	if b {
		return ^uint64(0)
	}
	return 0
}

func TestCandidateBridgesProperties(t *testing.T) {
	c := netlist.ScanCUT(4, 6, 8, 4)
	bridges := CandidateBridges(c, 40, 7)
	if len(bridges) < 20 {
		t.Fatalf("only %d bridges", len(bridges))
	}
	seen := make(map[[2]int]bool)
	for _, br := range bridges {
		if br.A == br.B {
			t.Fatalf("self bridge %v", br)
		}
		if br.A > br.B {
			t.Fatalf("unnormalized pair %v", br)
		}
		key := [2]int{br.A, br.B}
		if seen[key] {
			t.Fatalf("duplicate pair %v", br)
		}
		seen[key] = true
		// No cone relationship (feedback exclusion).
		for _, g := range c.Cone(br.A) {
			if g == br.B {
				t.Fatalf("bridge %v has B in cone(A)", br)
			}
		}
		// Levels at most one apart (layout-neighbor proxy).
		dl := c.Level(br.A) - c.Level(br.B)
		if dl < -1 || dl > 1 {
			t.Fatalf("bridge %v spans levels %d and %d", br, c.Level(br.A), c.Level(br.B))
		}
	}
}

// TestRandomPatternsCoverBridges: stuck-at-oriented random patterns
// also detect most bridging defects — the classic surrogate-coverage
// argument behind using stuck-at BIST for layout defects. (The LFSR
// variant lives in the stumps package tests to avoid an import cycle.)
func TestRandomPatternsCoverBridges(t *testing.T) {
	c := netlist.ScanCUT(21, 6, 8, 4)
	bridges := CandidateBridges(c, 60, 11)
	bs := NewBridgeSim(c, bridges)
	src := &randomSource{nIn: c.NumInputs(), rng: rand.New(rand.NewSource(3))}
	for bs.seen < 512 && len(bs.remaining) > 0 {
		if _, err := bs.SimulateBatch(src.NextBatch(64)); err != nil {
			t.Fatal(err)
		}
	}
	if cov := bs.Coverage(); cov < 0.5 {
		t.Fatalf("bridge coverage = %.2f after 512 PRPs", cov)
	}
	// Detections recorded consistently.
	for _, d := range bs.Detections() {
		if d.Pattern < 0 || d.Pattern >= 512 {
			t.Fatalf("detection pattern %d", d.Pattern)
		}
	}
}

func TestBridgeSimEmptyListTrivial(t *testing.T) {
	c := twoBufCircuit(t)
	bs := NewBridgeSim(c, nil)
	if bs.Coverage() != 1 || bs.TotalBridges() != 0 {
		t.Fatal("empty list must be trivially covered")
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng
}
