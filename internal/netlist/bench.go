package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseBench reads a circuit in the ISCAS-85/89 ".bench" netlist format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	n1 = NAND(a, b)
//	y  = NOT(n1)
//
// Supported functions: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF.
// DFFs are rejected — scan-insert sequential designs with SeqBuilder
// first (the .bench sequential subset maps onto it mechanically).
// Signals may be used before their defining line; definitions form a
// DAG (combinational loops are rejected).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type def struct {
		fn     string
		inputs []string
		line   int
	}
	defs := make(map[string]def)
	var inputs, outputs, defOrder []string

	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			sig, err := parseParen(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: %s:%d: %w", name, lineNo, err)
			}
			inputs = append(inputs, sig)
		case strings.HasPrefix(upper, "OUTPUT"):
			sig, err := parseParen(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: %s:%d: %w", name, lineNo, err)
			}
			outputs = append(outputs, sig)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("netlist: %s:%d: expected assignment, got %q", name, lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, fmt.Errorf("netlist: %s:%d: malformed function %q", name, lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:close], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			if _, dup := defs[lhs]; dup {
				return nil, fmt.Errorf("netlist: %s:%d: signal %q defined twice", name, lineNo, lhs)
			}
			defs[lhs] = def{fn: fn, inputs: args, line: lineNo}
			defOrder = append(defOrder, lhs)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %s: %w", name, err)
	}
	if len(inputs) == 0 || len(outputs) == 0 {
		return nil, fmt.Errorf("netlist: %s: need INPUT and OUTPUT declarations", name)
	}

	fnType := map[string]GateType{
		"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor,
		"XOR": Xor, "XNOR": Xnor, "NOT": Not, "BUF": Buf, "BUFF": Buf,
	}

	b := NewBuilder(name)
	ids := make(map[string]int, len(inputs)+len(defs))
	for _, sig := range inputs {
		if _, dup := ids[sig]; dup {
			return nil, fmt.Errorf("netlist: %s: input %q declared twice", name, sig)
		}
		ids[sig] = b.Input(sig)
	}

	// Topological elaboration with cycle detection.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var elaborate func(sig string) (int, error)
	elaborate = func(sig string) (int, error) {
		if id, ok := ids[sig]; ok {
			return id, nil
		}
		d, ok := defs[sig]
		if !ok {
			return 0, fmt.Errorf("netlist: %s: signal %q never defined", name, sig)
		}
		switch state[sig] {
		case visiting:
			return 0, fmt.Errorf("netlist: %s:%d: combinational loop through %q", name, d.line, sig)
		case done:
			return ids[sig], nil
		}
		state[sig] = visiting
		t, ok := fnType[d.fn]
		if !ok {
			return 0, fmt.Errorf("netlist: %s:%d: unsupported function %q (scan-insert DFFs first)", name, d.line, d.fn)
		}
		fanin := make([]int, len(d.inputs))
		for i, in := range d.inputs {
			id, err := elaborate(in)
			if err != nil {
				return 0, err
			}
			fanin[i] = id
		}
		id := b.Gate(t, sig, fanin...)
		ids[sig] = id
		state[sig] = done
		return id, nil
	}
	for _, sig := range defOrder {
		if _, err := elaborate(sig); err != nil {
			return nil, err
		}
	}
	for _, sig := range outputs {
		id, ok := ids[sig]
		if !ok {
			return nil, fmt.Errorf("netlist: %s: output %q never defined", name, sig)
		}
		b.Output(id)
	}
	return b.Build()
}

func parseParen(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open+1 {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	sig := strings.TrimSpace(line[open+1 : close])
	if sig == "" {
		return "", fmt.Errorf("empty signal in %q", line)
	}
	return sig, nil
}

// WriteBench serializes a circuit in .bench format. Gate names are the
// circuit's signal names where unique, with the gate ID as fallback.
func WriteBench(w io.Writer, c *Circuit) error {
	name := benchNames(c)
	for _, id := range c.Inputs {
		if _, err := fmt.Fprintf(w, "INPUT(%s)\n", name[id]); err != nil {
			return err
		}
	}
	for _, id := range c.Outputs {
		if _, err := fmt.Fprintf(w, "OUTPUT(%s)\n", name[id]); err != nil {
			return err
		}
	}
	fnName := map[GateType]string{
		And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
		Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUFF",
	}
	for _, id := range c.Order() {
		g := &c.Gates[id]
		args := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			args[i] = name[f]
		}
		if _, err := fmt.Fprintf(w, "%s = %s(%s)\n", name[id], fnName[g.Type], strings.Join(args, ", ")); err != nil {
			return err
		}
	}
	return nil
}

// benchNames returns unique signal names per gate: the declared name
// if globally unique and non-empty, otherwise "n<id>".
func benchNames(c *Circuit) map[int]string {
	count := make(map[string]int)
	for _, g := range c.Gates {
		count[g.Name]++
	}
	out := make(map[int]string, len(c.Gates))
	for _, g := range c.Gates {
		if g.Name != "" && count[g.Name] == 1 && !strings.ContainsAny(g.Name, "(), =#") {
			out[g.ID] = g.Name
		} else {
			out[g.ID] = fmt.Sprintf("n%d", g.ID)
		}
	}
	return out
}

// C17Bench is the ISCAS-85 c17 benchmark in .bench source form, usable
// as a ParseBench example and golden input.
const C17Bench = `# c17 — ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
