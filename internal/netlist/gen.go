package netlist

import (
	"fmt"
	"math/rand"
)

// C17 builds the ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND
// gates. It is the standard smoke-test circuit of the test literature.
func C17() *Circuit {
	b := NewBuilder("c17")
	n1 := b.Input("1")
	n2 := b.Input("2")
	n3 := b.Input("3")
	n6 := b.Input("6")
	n7 := b.Input("7")
	g10 := b.Gate(Nand, "10", n1, n3)
	g11 := b.Gate(Nand, "11", n3, n6)
	g16 := b.Gate(Nand, "16", n2, g11)
	g19 := b.Gate(Nand, "19", g11, n7)
	g22 := b.Gate(Nand, "22", g10, g16)
	g23 := b.Gate(Nand, "23", g16, g19)
	b.Output(g22)
	b.Output(g23)
	c, err := b.Build()
	if err != nil {
		panic("netlist: c17: " + err.Error())
	}
	return c
}

// RippleAdder builds an n-bit ripple-carry adder with carry-in: inputs
// a0..a(n-1), b0..b(n-1), cin; outputs s0..s(n-1), cout. It provides a
// circuit with a known arithmetic function for oracle-based tests.
func RippleAdder(n int) *Circuit {
	if n < 1 {
		panic("netlist: RippleAdder needs n >= 1")
	}
	b := NewBuilder(fmt.Sprintf("adder%d", n))
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < n; i++ {
		axb := b.Gate(Xor, fmt.Sprintf("axb%d", i), as[i], bs[i])
		sum := b.Gate(Xor, fmt.Sprintf("s%d", i), axb, carry)
		and1 := b.Gate(And, fmt.Sprintf("ca%d", i), axb, carry)
		and2 := b.Gate(And, fmt.Sprintf("cb%d", i), as[i], bs[i])
		carry = b.Gate(Or, fmt.Sprintf("c%d", i+1), and1, and2)
		b.Output(sum)
	}
	b.Output(carry)
	c, err := b.Build()
	if err != nil {
		panic("netlist: adder: " + err.Error())
	}
	return c
}

// RandomOptions parameterize Random circuit generation.
type RandomOptions struct {
	Inputs  int // number of (pseudo-)primary inputs
	Gates   int // number of internal gates (excluding inputs)
	Outputs int // number of (pseudo-)primary outputs
	// MaxFanin bounds the fanin per gate (default 3, min 2 for
	// multi-input types).
	MaxFanin int
	// Locality biases fanin selection towards recent gates, producing
	// deeper circuits; 0 picks uniformly (shallow), larger values (e.g.
	// 8) produce long sensitization paths closer to real control logic.
	Locality int
}

// Random generates a pseudo-random combinational circuit from the given
// seed. The same seed always yields the same circuit. Gate types are
// drawn with a distribution resembling synthesized control logic (NAND/
// NOR-heavy with occasional XOR and inverters).
func Random(seed int64, opt RandomOptions) *Circuit {
	if opt.Inputs < 1 || opt.Gates < 1 || opt.Outputs < 1 {
		panic("netlist: Random needs positive Inputs, Gates, Outputs")
	}
	if opt.MaxFanin < 2 {
		opt.MaxFanin = 3
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("rand%d", seed))
	ids := make([]int, 0, opt.Inputs+opt.Gates)
	for i := 0; i < opt.Inputs; i++ {
		ids = append(ids, b.Input(fmt.Sprintf("pi%d", i)))
	}
	pick := func() int {
		n := len(ids)
		if opt.Locality <= 0 || n <= opt.Locality {
			return ids[rng.Intn(n)]
		}
		// Half the picks come from the most recent Locality*4 signals.
		if rng.Intn(2) == 0 {
			window := opt.Locality * 4
			if window > n {
				window = n
			}
			return ids[n-1-rng.Intn(window)]
		}
		return ids[rng.Intn(n)]
	}
	types := []GateType{Nand, Nand, Nor, Nor, And, Or, Not, Xor, Buf}
	for i := 0; i < opt.Gates; i++ {
		t := types[rng.Intn(len(types))]
		var fanin []int
		switch t {
		case Not, Buf:
			fanin = []int{pick()}
		default:
			k := 2 + rng.Intn(opt.MaxFanin-1)
			fanin = make([]int, k)
			for j := range fanin {
				fanin[j] = pick()
			}
		}
		ids = append(ids, b.Gate(t, fmt.Sprintf("g%d", i), fanin...))
	}
	// Every sink (gate nobody reads) must be observable, or its whole
	// input cone would be untestable dead logic. Distribute all sinks
	// round-robin over opt.Outputs XOR combiner gates — a structure akin
	// to the output compaction in front of a MISR.
	hasReader := make(map[int]bool)
	for _, g := range b.gates {
		for _, f := range g.Fanin {
			hasReader[f] = true
		}
	}
	var sinks []int
	for _, id := range ids[opt.Inputs:] {
		if !hasReader[id] {
			sinks = append(sinks, id)
		}
	}
	groups := make([][]int, opt.Outputs)
	for i, s := range sinks {
		groups[i%opt.Outputs] = append(groups[i%opt.Outputs], s)
	}
	for i, grp := range groups {
		if len(grp) == 0 {
			// Fewer sinks than outputs: observe a random internal gate.
			grp = []int{ids[opt.Inputs+rng.Intn(opt.Gates)]}
		}
		b.Output(b.Gate(Xor, fmt.Sprintf("po%d", i), grp...))
	}
	c, err := b.Build()
	if err != nil {
		panic("netlist: random: " + err.Error())
	}
	return c
}

// ScanCUT generates the full-scan combinational core of a synthetic CUT
// whose scan structure mirrors the paper's case-study processor: chains
// scan chains of chainLen cells each. The circuit has
// chains*chainLen pseudo-primary inputs and the same number of
// pseudo-primary outputs (plus a few primary I/Os), with gatesPerFF
// gates of random logic in between.
func ScanCUT(seed int64, chains, chainLen, gatesPerFF int) *Circuit {
	ff := chains * chainLen
	if ff < 1 {
		panic("netlist: ScanCUT needs at least one scan cell")
	}
	if gatesPerFF < 1 {
		gatesPerFF = 4
	}
	return Random(seed, RandomOptions{
		Inputs:   ff,
		Gates:    ff * gatesPerFF,
		Outputs:  ff,
		MaxFanin: 3,
		Locality: 8,
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
