package netlist

// SCOAP testability analysis (Goldstein 1979): combinational
// controllability CC0/CC1 (cost of driving a line to 0/1, ≥ 1) and
// observability CO (cost of propagating a line to an output, ≥ 0).
// ATPG uses the measures to backtrace towards easy-to-control inputs
// and to pick easy-to-observe D-frontier gates.

// Testability holds the SCOAP measures of one circuit.
type Testability struct {
	CC0 []int // per gate: cost to set 0
	CC1 []int // per gate: cost to set 1
	CO  []int // per gate: cost to observe
}

// maxCost caps the measures; redundant or very deep logic saturates.
const maxCost = 1 << 28

func satAdd(a, b int) int {
	s := a + b
	if s > maxCost || s < 0 {
		return maxCost
	}
	return s
}

// AnalyzeTestability computes the SCOAP measures for the circuit.
func AnalyzeTestability(c *Circuit) *Testability {
	n := c.NumGates()
	t := &Testability{
		CC0: make([]int, n),
		CC1: make([]int, n),
		CO:  make([]int, n),
	}
	// Controllability: forward pass in topological order.
	for _, id := range c.Inputs {
		t.CC0[id], t.CC1[id] = 1, 1
	}
	for _, id := range c.Order() {
		g := &c.Gates[id]
		switch g.Type {
		case Buf:
			t.CC0[id] = satAdd(t.CC0[g.Fanin[0]], 1)
			t.CC1[id] = satAdd(t.CC1[g.Fanin[0]], 1)
		case Not:
			t.CC0[id] = satAdd(t.CC1[g.Fanin[0]], 1)
			t.CC1[id] = satAdd(t.CC0[g.Fanin[0]], 1)
		case And, Nand:
			// 0 at output of AND: cheapest single 0 input; 1: all 1s.
			min0 := maxCost
			sum1 := 0
			for _, f := range g.Fanin {
				if t.CC0[f] < min0 {
					min0 = t.CC0[f]
				}
				sum1 = satAdd(sum1, t.CC1[f])
			}
			c0, c1 := satAdd(min0, 1), satAdd(sum1, 1)
			if g.Type == Nand {
				c0, c1 = c1, c0
			}
			t.CC0[id], t.CC1[id] = c0, c1
		case Or, Nor:
			min1 := maxCost
			sum0 := 0
			for _, f := range g.Fanin {
				if t.CC1[f] < min1 {
					min1 = t.CC1[f]
				}
				sum0 = satAdd(sum0, t.CC0[f])
			}
			c1, c0 := satAdd(min1, 1), satAdd(sum0, 1)
			if g.Type == Nor {
				c0, c1 = c1, c0
			}
			t.CC0[id], t.CC1[id] = c0, c1
		case Xor, Xnor:
			// Parity: cost of the cheapest assignment achieving each
			// parity, folded pairwise.
			c0, c1 := t.CC0[g.Fanin[0]], t.CC1[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				n0, n1 := t.CC0[f], t.CC1[f]
				even := minInt(satAdd(c0, n0), satAdd(c1, n1))
				odd := minInt(satAdd(c0, n1), satAdd(c1, n0))
				c0, c1 = even, odd
			}
			c0, c1 = satAdd(c0, 1), satAdd(c1, 1)
			if g.Type == Xnor {
				c0, c1 = c1, c0
			}
			t.CC0[id], t.CC1[id] = c0, c1
		}
	}
	// Observability: backward pass in reverse topological order.
	for i := range t.CO {
		t.CO[i] = maxCost
	}
	for _, id := range c.Outputs {
		t.CO[id] = 0
	}
	order := c.Order()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := &c.Gates[id]
		if t.CO[id] >= maxCost {
			continue
		}
		for pin, f := range g.Fanin {
			var cost int
			switch g.Type {
			case Buf, Not:
				cost = satAdd(t.CO[id], 1)
			case And, Nand:
				// Side inputs must be non-controlling (1).
				cost = satAdd(t.CO[id], 1)
				for p2, f2 := range g.Fanin {
					if p2 != pin {
						cost = satAdd(cost, t.CC1[f2])
					}
				}
			case Or, Nor:
				cost = satAdd(t.CO[id], 1)
				for p2, f2 := range g.Fanin {
					if p2 != pin {
						cost = satAdd(cost, t.CC0[f2])
					}
				}
			case Xor, Xnor:
				// Side inputs need any definite value; charge the cheaper.
				cost = satAdd(t.CO[id], 1)
				for p2, f2 := range g.Fanin {
					if p2 != pin {
						cost = satAdd(cost, minInt(t.CC0[f2], t.CC1[f2]))
					}
				}
			}
			if cost < t.CO[f] {
				t.CO[f] = cost
			}
		}
	}
	return t
}

// Controllability returns the cost of driving gate id to the given
// value.
func (t *Testability) Controllability(id int, value bool) int {
	if value {
		return t.CC1[id]
	}
	return t.CC0[id]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
