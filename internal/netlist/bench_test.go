package netlist

import (
	"strings"
	"testing"
)

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBench("c17", strings.NewReader(C17Bench))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.NumGates() != 11 {
		t.Fatalf("shape: %d in, %d out, %d gates", c.NumInputs(), c.NumOutputs(), c.NumGates())
	}
	// Same collapsed fault count as the programmatic C17.
	if got, want := len(CollapsedFaults(c)), len(CollapsedFaults(C17())); got != want {
		t.Fatalf("collapsed faults = %d, want %d", got, want)
	}
}

// TestParseBenchMatchesProgrammaticC17 checks functional equivalence
// by exhaustive simulation against the hand-built c17.
func TestParseBenchMatchesProgrammaticC17(t *testing.T) {
	parsed, err := ParseBench("c17", strings.NewReader(C17Bench))
	if err != nil {
		t.Fatal(err)
	}
	built := C17()
	evalOne := func(c *Circuit, pattern int) [2]bool {
		vals := make([]bool, c.NumGates())
		for i, id := range c.Inputs {
			vals[id] = pattern>>uint(i)&1 == 1
		}
		in := make([]bool, 4)
		for _, id := range c.Order() {
			g := &c.Gates[id]
			use := in[:len(g.Fanin)]
			for i, f := range g.Fanin {
				use[i] = vals[f]
			}
			vals[id] = g.Type.Eval(use)
		}
		return [2]bool{vals[c.Outputs[0]], vals[c.Outputs[1]]}
	}
	for p := 0; p < 32; p++ {
		if evalOne(parsed, p) != evalOne(built, p) {
			t.Fatalf("pattern %05b differs", p)
		}
	}
}

// TestWriteBenchRoundTrip serializes a generated circuit and re-parses
// it; both must be functionally identical on random patterns.
func TestWriteBenchRoundTrip(t *testing.T) {
	orig := Random(23, RandomOptions{Inputs: 7, Gates: 40, Outputs: 4})
	var sb strings.Builder
	if err := WriteBench(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench("roundtrip", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if back.NumInputs() != orig.NumInputs() || back.NumOutputs() != orig.NumOutputs() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.NumInputs(), back.NumOutputs(), orig.NumInputs(), orig.NumOutputs())
	}
	evalAll := func(c *Circuit, pattern int) []bool {
		vals := make([]bool, c.NumGates())
		for i, id := range c.Inputs {
			vals[id] = pattern>>uint(i)&1 == 1
		}
		in := make([]bool, 8)
		for _, id := range c.Order() {
			g := &c.Gates[id]
			use := in[:len(g.Fanin)]
			for i, f := range g.Fanin {
				use[i] = vals[f]
			}
			vals[id] = g.Type.Eval(use)
		}
		out := make([]bool, len(c.Outputs))
		for i, id := range c.Outputs {
			out[i] = vals[id]
		}
		return out
	}
	for p := 0; p < 128; p++ {
		a, b := evalAll(orig, p), evalAll(back, p)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %d output %d differs", p, i)
			}
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no-io", "a = AND(b, c)\n"},
		{"undefined", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"},
		{"dup-def", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"},
		{"dup-input", "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"},
		{"bad-fn", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"},
		{"dff", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"},
		{"loop", "INPUT(a)\nOUTPUT(x)\nx = AND(a, z)\nz = NOT(x)\n"},
		{"malformed", "INPUT(a)\nOUTPUT(y)\ny NOT a\n"},
		{"bad-paren", "INPUT a\nOUTPUT(y)\ny = NOT(a)\n"},
		{"undefined-output", "INPUT(a)\nOUTPUT(nope)\nx = NOT(a)\n"},
	}
	for _, c := range cases {
		if _, err := ParseBench(c.name, strings.NewReader(c.src)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestParseBenchForwardReferences(t *testing.T) {
	// Definitions out of order are legal in .bench.
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(mid)\nmid = BUFF(a)\n"
	c, err := ParseBench("fwd", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 3 {
		t.Fatalf("gates = %d", c.NumGates())
	}
}

func TestParseBenchCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(y)\ny = NOT(a)\n"
	if _, err := ParseBench("c", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
}
