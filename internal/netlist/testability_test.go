package netlist

import "testing"

func TestSCOAPHandComputed(t *testing.T) {
	// y = AND(a, b); z = NOT(y). From-PI costs: CC0/CC1(PI) = 1.
	b := NewBuilder("tiny")
	a := b.Input("a")
	bb := b.Input("b")
	y := b.Gate(And, "y", a, bb)
	z := b.Gate(Not, "z", y)
	b.Output(z)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts := AnalyzeTestability(c)
	// AND: CC0 = min(1,1)+1 = 2; CC1 = 1+1+1 = 3.
	if ts.CC0[y] != 2 || ts.CC1[y] != 3 {
		t.Fatalf("AND CC = %d/%d, want 2/3", ts.CC0[y], ts.CC1[y])
	}
	// NOT: swapped + 1.
	if ts.CC0[z] != 4 || ts.CC1[z] != 3 {
		t.Fatalf("NOT CC = %d/%d, want 4/3", ts.CC0[z], ts.CC1[z])
	}
	// Observability: output 0; y through NOT: 0+1; a through AND: CO(y)
	// + CC1(b) + 1 = 1+1+1 = 3.
	if ts.CO[z] != 0 || ts.CO[y] != 1 || ts.CO[a] != 3 || ts.CO[bb] != 3 {
		t.Fatalf("CO = z:%d y:%d a:%d b:%d", ts.CO[z], ts.CO[y], ts.CO[a], ts.CO[bb])
	}
	if ts.Controllability(y, false) != 2 || ts.Controllability(y, true) != 3 {
		t.Fatal("Controllability accessor wrong")
	}
}

func TestSCOAPXor(t *testing.T) {
	// y = XOR(a, b): CC0 = min(1+1, 1+1)+1 = 3; CC1 = 3.
	b := NewBuilder("x")
	a := b.Input("a")
	bb := b.Input("b")
	y := b.Gate(Xor, "y", a, bb)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts := AnalyzeTestability(c)
	if ts.CC0[y] != 3 || ts.CC1[y] != 3 {
		t.Fatalf("XOR CC = %d/%d, want 3/3", ts.CC0[y], ts.CC1[y])
	}
	// Observing a through XOR: CO(y)=0 + min(CC0,CC1)(b)=1 + 1 = 2.
	if ts.CO[a] != 2 {
		t.Fatalf("CO(a) = %d, want 2", ts.CO[a])
	}
}

// TestSCOAPInvariants: controllability ≥ 1 everywhere, outputs have
// CO 0, every cone-connected gate has finite observability.
func TestSCOAPInvariants(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := Random(seed, RandomOptions{Inputs: 10, Gates: 80, Outputs: 6})
		ts := AnalyzeTestability(c)
		for id := range c.Gates {
			if ts.CC0[id] < 1 || ts.CC1[id] < 1 {
				t.Fatalf("seed %d: gate %d CC %d/%d", seed, id, ts.CC0[id], ts.CC1[id])
			}
		}
		for _, id := range c.Outputs {
			if ts.CO[id] != 0 {
				t.Fatalf("seed %d: output %d CO %d", seed, id, ts.CO[id])
			}
		}
		// Every output's transitive fanin is observable.
		for _, out := range c.Outputs {
			var mark func(int)
			seen := make(map[int]bool)
			mark = func(id int) {
				if seen[id] {
					return
				}
				seen[id] = true
				if ts.CO[id] >= maxCost {
					t.Fatalf("seed %d: gate %d feeds output %d but CO saturated", seed, id, out)
				}
				for _, f := range c.Gates[id].Fanin {
					mark(f)
				}
			}
			mark(out)
		}
	}
}

func TestSatAdd(t *testing.T) {
	if satAdd(maxCost, maxCost) != maxCost {
		t.Fatal("saturation broken")
	}
	if satAdd(2, 3) != 5 {
		t.Fatal("plain add broken")
	}
}
