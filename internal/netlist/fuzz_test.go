package netlist

import (
	"strings"
	"testing"
)

// FuzzParseBench feeds arbitrary text through the .bench parser: it
// must never panic, and anything it accepts must re-serialize and
// re-parse cleanly (idempotent interchange).
func FuzzParseBench(f *testing.F) {
	f.Add(C17Bench)
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n")
	f.Add("# only a comment\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBench("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteBench(&sb, c); err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		back, err := ParseBench("fuzz2", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
		if back.NumInputs() != c.NumInputs() || back.NumOutputs() != c.NumOutputs() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.NumInputs(), back.NumOutputs(), c.NumInputs(), c.NumOutputs())
		}
	})
}
