package netlist

import (
	"fmt"
	"sort"
)

// Circuit is a levelized combinational netlist. Build one through
// Builder; a finalized circuit is immutable.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // primary + pseudo-primary inputs, in declaration order
	Outputs []int // primary + pseudo-primary outputs, in declaration order

	fanout [][]int // gate ID -> IDs of gates reading it
	level  []int   // topological level, inputs at 0
	order  []int   // all non-input gates in ascending level order
}

// NumGates returns the total number of gates including inputs.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumInputs returns the number of (pseudo-)primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of (pseudo-)primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// Fanout returns the gates reading gate id.
func (c *Circuit) Fanout(id int) []int { return c.fanout[id] }

// Level returns the topological level of gate id (inputs are level 0).
func (c *Circuit) Level(id int) int { return c.level[id] }

// Order returns all non-input gates in ascending topological order.
func (c *Circuit) Order() []int { return c.order }

// Depth returns the maximum level in the circuit.
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.level {
		if l > d {
			d = l
		}
	}
	return d
}

// Cone returns the transitive fanout cone of gate id (excluding id
// itself), in ascending topological order. It is the set of gates whose
// value can change when gate id changes.
func (c *Circuit) Cone(id int) []int {
	seen := make(map[int]bool)
	stack := append([]int(nil), c.fanout[id]...)
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[g] {
			continue
		}
		seen[g] = true
		stack = append(stack, c.fanout[g]...)
	}
	out := make([]int, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if c.level[out[i]] != c.level[out[j]] {
			return c.level[out[i]] < c.level[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Builder incrementally constructs a circuit.
type Builder struct {
	name  string
	gates []Gate
	ins   []int
	outs  []int
	err   error
}

// NewBuilder returns a builder for a circuit with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// Input declares a new (pseudo-)primary input and returns its gate ID.
func (b *Builder) Input(name string) int {
	id := len(b.gates)
	b.gates = append(b.gates, Gate{ID: id, Type: Input, Name: name})
	b.ins = append(b.ins, id)
	return id
}

// Gate adds a gate of type t reading the given fanin IDs and returns its
// gate ID.
func (b *Builder) Gate(t GateType, name string, fanin ...int) int {
	id := len(b.gates)
	if t == Input {
		b.fail(fmt.Errorf("netlist: use Input to declare inputs"))
	}
	if len(fanin) == 0 {
		b.fail(fmt.Errorf("netlist: gate %q has no fanin", name))
	}
	if (t == Buf || t == Not) && len(fanin) != 1 {
		b.fail(fmt.Errorf("netlist: %v gate %q must have exactly one fanin", t, name))
	}
	for _, f := range fanin {
		if f < 0 || f >= id {
			b.fail(fmt.Errorf("netlist: gate %q: fanin %d out of range (forward reference?)", name, f))
		}
	}
	b.gates = append(b.gates, Gate{ID: id, Type: t, Fanin: append([]int(nil), fanin...), Name: name})
	return id
}

// Output marks gate id as a (pseudo-)primary output.
func (b *Builder) Output(id int) {
	if id < 0 || id >= len(b.gates) {
		b.fail(fmt.Errorf("netlist: output %d out of range", id))
		return
	}
	b.outs = append(b.outs, id)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the circuit: it computes fanout lists and topological
// levels and validates that every gate is structurally sound.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.ins) == 0 {
		return nil, fmt.Errorf("netlist: circuit %q has no inputs", b.name)
	}
	if len(b.outs) == 0 {
		return nil, fmt.Errorf("netlist: circuit %q has no outputs", b.name)
	}
	c := &Circuit{
		Name:    b.name,
		Gates:   append([]Gate(nil), b.gates...),
		Inputs:  append([]int(nil), b.ins...),
		Outputs: append([]int(nil), b.outs...),
	}
	n := len(c.Gates)
	c.fanout = make([][]int, n)
	c.level = make([]int, n)
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			c.fanout[f] = append(c.fanout[f], g.ID)
		}
	}
	// Builder enforces fanin < id, so ascending ID order is topological.
	c.order = make([]int, 0, n-len(c.Inputs))
	for _, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		lvl := 0
		for _, f := range g.Fanin {
			if c.level[f] >= lvl {
				lvl = c.level[f] + 1
			}
		}
		c.level[g.ID] = lvl
		c.order = append(c.order, g.ID)
	}
	return c, nil
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	Name    string
	Gates   int
	Inputs  int
	Outputs int
	Depth   int
	Faults  int // collapsed stuck-at faults
}

// Stats returns summary statistics including the collapsed fault count.
func (c *Circuit) Stats() Stats {
	return Stats{
		Name:    c.Name,
		Gates:   c.NumGates(),
		Inputs:  c.NumInputs(),
		Outputs: c.NumOutputs(),
		Depth:   c.Depth(),
		Faults:  len(CollapsedFaults(c)),
	}
}
