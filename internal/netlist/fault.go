package netlist

import (
	"fmt"
	"sort"
)

// Fault is a single stuck-at fault. Pin == StemPin addresses the gate
// output (the stem); Pin >= 0 addresses the given fanin pin of the gate
// (a fanout branch).
type Fault struct {
	Gate  int
	Pin   int
	Stuck bool // stuck-at value: false = s-a-0, true = s-a-1
}

// StemPin addresses the output stem of a gate in Fault.Pin.
const StemPin = -1

// String renders the fault like "g12/sa1" or "g12.in2/sa0".
func (f Fault) String() string {
	v := "sa0"
	if f.Stuck {
		v = "sa1"
	}
	if f.Pin == StemPin {
		return fmt.Sprintf("g%d/%s", f.Gate, v)
	}
	return fmt.Sprintf("g%d.in%d/%s", f.Gate, f.Pin, v)
}

// AllFaults enumerates the uncollapsed single stuck-at fault universe:
// both polarities on every gate output stem and on every gate input pin.
func AllFaults(c *Circuit) []Fault {
	var out []Fault
	for _, g := range c.Gates {
		for _, v := range []bool{false, true} {
			out = append(out, Fault{Gate: g.ID, Pin: StemPin, Stuck: v})
		}
		for pin := range g.Fanin {
			for _, v := range []bool{false, true} {
				out = append(out, Fault{Gate: g.ID, Pin: pin, Stuck: v})
			}
		}
	}
	return out
}

// CollapsedFaults returns one representative per structural equivalence
// class of the single stuck-at fault universe. Two classic rules are
// applied:
//
//  1. A fanout-free connection makes the driver's stem fault equivalent
//     to the reader's input-pin fault of the same polarity.
//  2. Within a gate, a controlling-value input fault is equivalent to
//     the implied output fault (e.g. NAND input s-a-0 ≡ output s-a-1),
//     and for BUF/NOT every input fault is equivalent to the matching
//     output fault.
//
// The representative of each class is its smallest member under
// (gate, pin, value) ordering; results are sorted the same way.
func CollapsedFaults(c *Circuit) []Fault {
	uf := newUnionFind()
	key := func(f Fault) string { return f.String() }
	merge := func(a, b Fault) { uf.union(key(a), key(b)) }
	for _, f := range AllFaults(c) {
		uf.add(key(f))
	}

	for _, g := range c.Gates {
		// Rule 2: gate-internal equivalences.
		switch g.Type {
		case Buf:
			merge(Fault{g.ID, 0, false}, Fault{g.ID, StemPin, false})
			merge(Fault{g.ID, 0, true}, Fault{g.ID, StemPin, true})
		case Not:
			merge(Fault{g.ID, 0, false}, Fault{g.ID, StemPin, true})
			merge(Fault{g.ID, 0, true}, Fault{g.ID, StemPin, false})
		default:
			if cv, ok := g.Type.ControllingValue(); ok {
				outVal := g.Type.Eval(constInputs(len(g.Fanin), cv))
				for pin := range g.Fanin {
					merge(Fault{g.ID, pin, cv}, Fault{g.ID, StemPin, outVal})
				}
			}
		}
		// Rule 1: fanout-free line equivalence driver-stem ≡ reader-pin.
		for _, f := range g.Fanin {
			if len(c.fanout[f]) == 1 {
				for pin, src := range g.Fanin {
					if src == f {
						merge(Fault{f, StemPin, false}, Fault{g.ID, pin, false})
						merge(Fault{f, StemPin, true}, Fault{g.ID, pin, true})
					}
				}
			}
		}
	}

	// Pick the minimum fault of each class.
	repr := make(map[string]Fault)
	for _, f := range AllFaults(c) {
		root := uf.find(key(f))
		cur, ok := repr[root]
		if !ok || faultLess(f, cur) {
			repr[root] = f
		}
	}
	out := make([]Fault, 0, len(repr))
	for _, f := range repr {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return faultLess(out[i], out[j]) })
	return out
}

func faultLess(a, b Fault) bool {
	if a.Gate != b.Gate {
		return a.Gate < b.Gate
	}
	if a.Pin != b.Pin {
		return a.Pin < b.Pin
	}
	return !a.Stuck && b.Stuck
}

func constInputs(n int, v bool) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// unionFind is a string-keyed disjoint-set forest with path compression.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) add(k string) {
	if _, ok := u.parent[k]; !ok {
		u.parent[k] = k
	}
}

func (u *unionFind) find(k string) string {
	u.add(k)
	root := k
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[k] != root {
		u.parent[k], k = root, u.parent[k]
	}
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}

// FaultSite returns the gate whose output value the fault effectively
// corrupts for simulation purposes, plus whether the corruption applies
// to a specific reader pin only. For a stem fault the corrupted gate is
// f.Gate itself and pin is StemPin; for an input-pin fault the value of
// the driving gate is corrupted only as seen by f.Gate's pin.
func FaultSite(c *Circuit, f Fault) (driver int, readerPin int) {
	if f.Pin == StemPin {
		return f.Gate, StemPin
	}
	return c.Gates[f.Gate].Fanin[f.Pin], f.Pin
}
