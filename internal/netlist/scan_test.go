package netlist

import (
	"fmt"
	"testing"
)

func TestCounterFullScanShape(t *testing.T) {
	c, layout, err := Counter(6).BuildFullScan(2)
	if err != nil {
		t.Fatal(err)
	}
	// 6 flops + 1 PI = 7 cells over 2 chains -> chainLen 4, 1 pad cell.
	if layout.Chains != 2 || layout.ChainLen != 4 {
		t.Fatalf("layout = %+v", layout)
	}
	if len(layout.PadCells) != 1 || layout.PadCells[0] != 7 {
		t.Fatalf("pads = %v", layout.PadCells)
	}
	if c.NumInputs() != 8 {
		t.Fatalf("inputs = %d", c.NumInputs())
	}
	// Outputs: 6 flop D nets + 6 primary outputs (the Q nets, mapped to
	// their pseudo-primary inputs).
	if c.NumOutputs() != 12 {
		t.Fatalf("outputs = %d", c.NumOutputs())
	}
	if len(layout.CellNames) != 8 || layout.CellNames[0] != "q0" || layout.CellNames[6] != "en" {
		t.Fatalf("cell names = %v", layout.CellNames)
	}
}

// TestFullScanCoreComputesNextState checks the scan-inserted core
// against the counter oracle: loading state s and enable e into the
// scan cells must capture s+e on the flop D outputs.
func TestFullScanCoreComputesNextState(t *testing.T) {
	const n = 6
	c, layout, err := Counter(n).BuildFullScan(2)
	if err != nil {
		t.Fatal(err)
	}
	sim := newScanOracleSim(t, c)
	for state := 0; state < 1<<n; state += 5 {
		for _, en := range []bool{false, true} {
			pattern := make([]bool, c.NumInputs())
			for i := 0; i < n; i++ {
				pattern[i] = state>>uint(i)&1 == 1 // cells q0..q5
			}
			pattern[n] = en // cell "en"
			out := sim(pattern)
			want := state
			if en {
				want = (state + 1) % (1 << n)
			}
			for i := 0; i < n; i++ {
				if out[i] != (want>>uint(i)&1 == 1) {
					t.Fatalf("state %d en %v: D[%d] wrong (layout %v)", state, en, i, layout.CellNames)
				}
			}
		}
	}
}

// newScanOracleSim returns a single-pattern evaluator over the
// combinational core using the package's own gate evaluation (no
// dependency on faultsim from this package's tests).
func newScanOracleSim(t *testing.T, c *Circuit) func([]bool) []bool {
	t.Helper()
	return func(pattern []bool) []bool {
		vals := make([]bool, c.NumGates())
		for i, id := range c.Inputs {
			vals[id] = pattern[i]
		}
		in := make([]bool, 8)
		for _, id := range c.Order() {
			g := &c.Gates[id]
			use := in[:len(g.Fanin)]
			for i, f := range g.Fanin {
				use[i] = vals[f]
			}
			vals[id] = g.Type.Eval(use)
		}
		out := make([]bool, len(c.Outputs))
		for i, id := range c.Outputs {
			out[i] = vals[id]
		}
		return out
	}
}

func TestTestableFaultsExcludesPads(t *testing.T) {
	c, layout, err := Counter(6).BuildFullScan(2)
	if err != nil {
		t.Fatal(err)
	}
	all := CollapsedFaults(c)
	testable := layout.TestableFaults(c, all)
	if len(testable) >= len(all) {
		t.Fatalf("pad faults not excluded: %d vs %d", len(testable), len(all))
	}
	padGate := c.Inputs[layout.PadCells[0]]
	for _, f := range testable {
		if f.Pin == StemPin && f.Gate == padGate {
			t.Fatalf("pad fault %v kept", f)
		}
	}
}

func TestSeqBuilderValidation(t *testing.T) {
	// Unconnected D.
	b := NewSeqBuilder("bad")
	b.Input("i")
	b.DFF("q")
	if _, _, err := b.BuildFullScan(1); err == nil {
		t.Fatal("unconnected D accepted")
	}

	// No flops: must direct users to the combinational Builder.
	b2 := NewSeqBuilder("comb")
	i2 := b2.Input("i")
	b2.Output(b2.Gate(Not, "n", i2))
	if _, _, err := b2.BuildFullScan(1); err == nil {
		t.Fatal("flopless design accepted")
	}

	// Combinational feedback (gate reading a later net) is rejected.
	b3 := NewSeqBuilder("loop")
	i3 := b3.Input("i")
	q := b3.DFF("q")
	g := b3.Gate(And, "g", i3, q)
	b3.ConnectD(q, g)
	b3.Output(q)
	if _, _, err := b3.BuildFullScan(1); err != nil {
		t.Fatalf("legal feedback through flop rejected: %v", err)
	}

	// ConnectD misuse.
	b4 := NewSeqBuilder("misuse")
	i4 := b4.Input("i")
	b4.ConnectD(i4, i4)
	if _, _, err := b4.BuildFullScan(1); err == nil {
		t.Fatal("ConnectD on input accepted")
	}

	// Invalid chain count.
	b5 := Counter(3)
	if _, _, err := b5.BuildFullScan(0); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func TestFullScanChainBalance(t *testing.T) {
	for _, chains := range []int{1, 2, 3, 5} {
		c, layout, err := Counter(8).BuildFullScan(chains)
		if err != nil {
			t.Fatalf("chains=%d: %v", chains, err)
		}
		if c.NumInputs() != layout.Chains*layout.ChainLen {
			t.Fatalf("chains=%d: %d inputs for %dx%d", chains, c.NumInputs(), layout.Chains, layout.ChainLen)
		}
		if len(layout.CellNames) != c.NumInputs() {
			t.Fatalf("chains=%d: cell name count %d", chains, len(layout.CellNames))
		}
	}
}

func TestCounterOracleSmall(t *testing.T) {
	// Cross-check the Counter generator itself by unrolling two cycles
	// on the scan core: (s+1)+1 = s+2.
	c, _, err := Counter(4).BuildFullScan(1)
	if err != nil {
		t.Fatal(err)
	}
	sim := newScanOracleSim(t, c)
	state := 5
	for cycle := 0; cycle < 2; cycle++ {
		pattern := make([]bool, c.NumInputs())
		for i := 0; i < 4; i++ {
			pattern[i] = state>>uint(i)&1 == 1
		}
		pattern[4] = true // enable
		out := sim(pattern)
		state = 0
		for i := 0; i < 4; i++ {
			if out[i] {
				state |= 1 << uint(i)
			}
		}
	}
	if state != 7 {
		t.Fatalf("two enabled cycles from 5 give %d, want 7", state)
	}
}

func ExampleSeqBuilder() {
	// A 1-bit toggle flip-flop: q' = q XOR en.
	b := NewSeqBuilder("toggle")
	en := b.Input("en")
	q := b.DFF("q")
	b.ConnectD(q, b.Gate(Xor, "next", q, en))
	b.Output(q)
	core, layout, err := b.BuildFullScan(1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d scan cells in %d chain(s)\n", core.NumInputs(), layout.Chains)
	// Output: 2 scan cells in 1 chain(s)
}
