package netlist

import (
	"testing"
	"testing/quick"
)

func TestGateTypeEval(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Not, []bool{true}, false},
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false}, false},
		{Nand, []bool{true, true}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
	}
	for _, c := range cases {
		if got := c.t.Eval(c.in); got != c.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

// TestEvalWordsMatchesEval cross-checks the 64-way parallel evaluation
// against the scalar evaluation on every bit position.
func TestEvalWordsMatchesEval(t *testing.T) {
	types := []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	f := func(a, b, c uint64) bool {
		for _, ty := range types {
			n := 2
			if ty == Buf || ty == Not {
				n = 1
			}
			words := [][]uint64{{a}, {a, b}, {a, b, c}}[n-1]
			if ty != Buf && ty != Not {
				words = []uint64{a, b, c}
				n = 3
			}
			got := ty.EvalWords(words[:n])
			for bit := 0; bit < 64; bit++ {
				in := make([]bool, n)
				for i := 0; i < n; i++ {
					in[i] = words[i]>>uint(bit)&1 == 1
				}
				want := ty.Eval(in)
				if (got>>uint(bit)&1 == 1) != want {
					t.Logf("%v bit %d: words=%v", ty, bit, words[:n])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestControllingValue(t *testing.T) {
	if v, ok := And.ControllingValue(); !ok || v {
		t.Fatal("And controlling value must be 0")
	}
	if v, ok := Nor.ControllingValue(); !ok || !v {
		t.Fatal("Nor controlling value must be 1")
	}
	if _, ok := Xor.ControllingValue(); ok {
		t.Fatal("Xor has no controlling value")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("bad")
	in := b.Input("i")
	b.Gate(Not, "n", in, in) // NOT with two fanins
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid NOT accepted")
	}

	b2 := NewBuilder("empty")
	if _, err := b2.Build(); err == nil {
		t.Fatal("circuit without inputs accepted")
	}

	b3 := NewBuilder("noout")
	b3.Input("i")
	if _, err := b3.Build(); err == nil {
		t.Fatal("circuit without outputs accepted")
	}

	b4 := NewBuilder("fwd")
	i4 := b4.Input("i")
	b4.Gate(And, "g", i4, 99) // forward/out-of-range fanin
	if _, err := b4.Build(); err == nil {
		t.Fatal("out-of-range fanin accepted")
	}
}

func TestC17Structure(t *testing.T) {
	c := C17()
	if c.NumInputs() != 5 || c.NumOutputs() != 2 {
		t.Fatalf("c17 I/O = %d/%d", c.NumInputs(), c.NumOutputs())
	}
	if c.NumGates() != 11 { // 5 inputs + 6 NANDs
		t.Fatalf("c17 gates = %d, want 11", c.NumGates())
	}
	if c.Depth() != 3 {
		t.Fatalf("c17 depth = %d, want 3", c.Depth())
	}
}

func TestLevelsAreTopological(t *testing.T) {
	c := ScanCUT(7, 4, 8, 4)
	for _, id := range c.Order() {
		for _, f := range c.Gates[id].Fanin {
			if c.Level(f) >= c.Level(id) {
				t.Fatalf("gate %d level %d not above fanin %d level %d", id, c.Level(id), f, c.Level(f))
			}
		}
	}
}

func TestConeContainsOutputsOnly(t *testing.T) {
	c := C17()
	// Cone of input n3 (id 2): feeds g10 and g11 which feed everything.
	cone := c.Cone(2)
	if len(cone) != 6 {
		t.Fatalf("cone of n3 = %v, want all 6 NANDs", cone)
	}
	// Cone must be topologically ordered.
	for i := 1; i < len(cone); i++ {
		if c.Level(cone[i-1]) > c.Level(cone[i]) {
			t.Fatalf("cone not level-ordered: %v", cone)
		}
	}
}

func TestAllFaultsCount(t *testing.T) {
	c := C17()
	// 11 gates: 22 stem faults; 6 NANDs with 2 pins each: 24 pin faults.
	if got := len(AllFaults(c)); got != 46 {
		t.Fatalf("AllFaults = %d, want 46", got)
	}
}

func TestCollapsedFaultsC17(t *testing.T) {
	c := C17()
	faults := CollapsedFaults(c)
	// The canonical collapsed fault count of c17 is 22.
	if len(faults) != 22 {
		t.Fatalf("collapsed faults = %d, want 22: %v", len(faults), faults)
	}
	// Collapsing must never exceed the uncollapsed universe and the
	// representatives must be unique.
	seen := make(map[string]bool)
	for _, f := range faults {
		if seen[f.String()] {
			t.Fatalf("duplicate representative %v", f)
		}
		seen[f.String()] = true
	}
}

func TestCollapsedFaultsInverterChain(t *testing.T) {
	b := NewBuilder("chain")
	in := b.Input("i")
	x := b.Gate(Not, "n1", in)
	y := b.Gate(Not, "n2", x)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A fanout-free inverter chain collapses to exactly 2 faults.
	if got := len(CollapsedFaults(c)); got != 2 {
		t.Fatalf("collapsed = %d, want 2", got)
	}
}

func TestRandomDeterministic(t *testing.T) {
	opt := RandomOptions{Inputs: 10, Gates: 50, Outputs: 5}
	a := Random(42, opt)
	b := Random(42, opt)
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed produced different circuits")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type || len(a.Gates[i].Fanin) != len(b.Gates[i].Fanin) {
			t.Fatalf("gate %d differs between same-seed circuits", i)
		}
	}
	c := Random(43, opt)
	same := true
	for i := range a.Gates {
		if a.Gates[i].Type != c.Gates[i].Type {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical gate types (suspicious)")
	}
}

func TestScanCUTShape(t *testing.T) {
	c := ScanCUT(1, 10, 7, 4)
	if c.NumInputs() != 70 || c.NumOutputs() != 70 {
		t.Fatalf("ScanCUT I/O = %d/%d, want 70/70", c.NumInputs(), c.NumOutputs())
	}
	// inputs + internal gates + one XOR combiner per output.
	if c.NumGates() != 70+70*4+70 {
		t.Fatalf("ScanCUT gates = %d", c.NumGates())
	}
}

func TestStats(t *testing.T) {
	s := C17().Stats()
	if s.Name != "c17" || s.Gates != 11 || s.Faults != 22 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestFaultString(t *testing.T) {
	if got := (Fault{Gate: 3, Pin: StemPin, Stuck: true}).String(); got != "g3/sa1" {
		t.Fatalf("String = %q", got)
	}
	if got := (Fault{Gate: 3, Pin: 1, Stuck: false}).String(); got != "g3.in1/sa0" {
		t.Fatalf("String = %q", got)
	}
}

func TestFaultSite(t *testing.T) {
	c := C17()
	d, pin := FaultSite(c, Fault{Gate: 5, Pin: StemPin})
	if d != 5 || pin != StemPin {
		t.Fatalf("stem site = %d,%d", d, pin)
	}
	g := c.Gates[7] // g16 reads n2 and g11
	d, pin = FaultSite(c, Fault{Gate: 7, Pin: 1})
	if d != g.Fanin[1] || pin != 1 {
		t.Fatalf("pin site = %d,%d", d, pin)
	}
}

func TestRippleAdderStructure(t *testing.T) {
	c := RippleAdder(4)
	if c.NumInputs() != 9 || c.NumOutputs() != 5 {
		t.Fatalf("adder I/O = %d/%d", c.NumInputs(), c.NumOutputs())
	}
}
