// Package netlist provides a gate-level combinational circuit model for
// full-scan designs: gates, levelized evaluation order, fanout cones,
// and single stuck-at fault lists with structural equivalence
// collapsing.
//
// Sequential designs are represented in their full-scan form: every scan
// flip-flop contributes a pseudo-primary input (its Q pin, loaded
// through the scan chain) and a pseudo-primary output (its D pin,
// unloaded through the chain). The combinational core between those is
// what the circuit models; package stumps assembles chains, LFSR and
// MISR around it.
package netlist

import "fmt"

// GateType enumerates the supported primitive gates.
type GateType int

const (
	// Input marks a primary or pseudo-primary input; it has no fanin.
	Input GateType = iota
	// Buf is a non-inverting buffer.
	Buf
	// Not is an inverter.
	Not
	// And is an n-input AND gate.
	And
	// Nand is an n-input NAND gate.
	Nand
	// Or is an n-input OR gate.
	Or
	// Nor is an n-input NOR gate.
	Nor
	// Xor is an n-input XOR (odd parity) gate.
	Xor
	// Xnor is an n-input XNOR (even parity) gate.
	Xnor
)

var gateNames = map[GateType]string{
	Input: "input", Buf: "buf", Not: "not", And: "and", Nand: "nand",
	Or: "or", Nor: "nor", Xor: "xor", Xnor: "xnor",
}

// String returns the lowercase gate mnemonic.
func (t GateType) String() string {
	if s, ok := gateNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// Inverting reports whether the gate complements its natural function
// (NAND, NOR, XNOR, NOT).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// ControllingValue returns the input value v that alone determines the
// gate output, and ok=false for gates without one (XOR family, buffers).
// AND/NAND are controlled by 0, OR/NOR by 1.
func (t GateType) ControllingValue() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// EvalWords computes the gate function over 64 patterns in parallel.
// Each uint64 carries one signal value per bit position.
func (t GateType) EvalWords(in []uint64) uint64 {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		if t == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, w := range in {
			v |= w
		}
		if t == Nor {
			return ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, w := range in {
			v ^= w
		}
		if t == Xnor {
			return ^v
		}
		return v
	default:
		panic("netlist: EvalWords on " + t.String())
	}
}

// Eval computes the single-pattern gate function.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == Xnor {
			return !v
		}
		return v
	default:
		panic("netlist: Eval on " + t.String())
	}
}

// Gate is one vertex of the netlist. Gates are identified by their dense
// integer ID, which doubles as the index into Circuit.Gates.
type Gate struct {
	ID    int
	Type  GateType
	Fanin []int
	Name  string
}
