package netlist

import "fmt"

// SeqBuilder constructs a synchronous sequential design: combinational
// gates plus D flip-flops. BuildFullScan performs scan insertion,
// turning every flip-flop (and, as boundary scan, every primary input)
// into a scan cell and returning the combinational core between scan
// loads and captures — the CUT model the STUMPS session drives.
type SeqBuilder struct {
	name  string
	nodes []seqNode
	outs  []int
	err   error
}

type seqNode struct {
	typ   GateType // Input for PIs; DFFs use isFF
	isFF  bool
	fanin []int
	name  string
}

// NewSeqBuilder returns a builder for a sequential design.
func NewSeqBuilder(name string) *SeqBuilder { return &SeqBuilder{name: name} }

// Input declares a primary input net and returns its ID.
func (b *SeqBuilder) Input(name string) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, seqNode{typ: Input, name: name})
	return id
}

// DFF declares a D flip-flop and returns the ID of its Q output net.
// The D input is connected later with ConnectD, permitting feedback
// loops (Q may feed logic that computes its own next state).
func (b *SeqBuilder) DFF(name string) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, seqNode{isFF: true, name: name, fanin: []int{-1}})
	return id
}

// ConnectD wires net d to the D input of flip-flop ff.
func (b *SeqBuilder) ConnectD(ff, d int) {
	if ff < 0 || ff >= len(b.nodes) || !b.nodes[ff].isFF {
		b.fail(fmt.Errorf("netlist: ConnectD on non-flop %d", ff))
		return
	}
	if d < 0 || d >= len(b.nodes) {
		b.fail(fmt.Errorf("netlist: ConnectD with invalid net %d", d))
		return
	}
	b.nodes[ff].fanin[0] = d
}

// Gate adds a combinational gate. Unlike the combinational Builder,
// fanin may reference any declared net including flip-flop outputs
// (feedback through state is what makes the design sequential).
func (b *SeqBuilder) Gate(t GateType, name string, fanin ...int) int {
	id := len(b.nodes)
	if t == Input {
		b.fail(fmt.Errorf("netlist: use Input to declare inputs"))
	}
	if len(fanin) == 0 {
		b.fail(fmt.Errorf("netlist: gate %q has no fanin", name))
	}
	if (t == Buf || t == Not) && len(fanin) != 1 {
		b.fail(fmt.Errorf("netlist: %v gate %q must have exactly one fanin", t, name))
	}
	for _, f := range fanin {
		if f < 0 || f >= id {
			b.fail(fmt.Errorf("netlist: gate %q: fanin %d undeclared", name, f))
		}
	}
	b.nodes = append(b.nodes, seqNode{typ: t, fanin: append([]int(nil), fanin...), name: name})
	return id
}

// Output marks net id as a primary output.
func (b *SeqBuilder) Output(id int) {
	if id < 0 || id >= len(b.nodes) {
		b.fail(fmt.Errorf("netlist: output %d out of range", id))
		return
	}
	b.outs = append(b.outs, id)
}

func (b *SeqBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// ScanLayout describes the scan structure produced by BuildFullScan.
type ScanLayout struct {
	Chains   int
	ChainLen int
	// CellNames labels the scan cells in input order of the full-scan
	// core: flip-flops first, then boundary-scanned primary inputs,
	// then "pad" filler cells balancing the chains.
	CellNames []string
	// PadCells lists the input positions of the filler cells; they
	// drive nothing and their faults are structurally undetectable.
	PadCells []int
}

// TestableFaults filters a collapsed fault list down to faults not
// rooted in pad cells.
func (l ScanLayout) TestableFaults(c *Circuit, faults []Fault) []Fault {
	pad := make(map[int]bool, len(l.PadCells))
	for _, p := range l.PadCells {
		pad[c.Inputs[p]] = true
	}
	var out []Fault
	for _, f := range faults {
		if f.Pin == StemPin && pad[f.Gate] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// BuildFullScan performs scan insertion: every flip-flop becomes a scan
// cell (pseudo-primary input for its Q, pseudo-primary output for its
// D), every primary input becomes a boundary-scan cell, and the cells
// are balanced over nChains equal-length chains (padded with inert
// filler cells when the count does not divide evenly). The returned
// circuit is the pure combinational core in scan-cell input order
// compatible with stumps.Session (Chains = nChains, ChainLen =
// layout.ChainLen).
func (b *SeqBuilder) BuildFullScan(nChains int) (*Circuit, ScanLayout, error) {
	if b.err != nil {
		return nil, ScanLayout{}, b.err
	}
	if nChains < 1 {
		return nil, ScanLayout{}, fmt.Errorf("netlist: need at least one chain")
	}
	var flops, pis []int
	for id, n := range b.nodes {
		switch {
		case n.isFF:
			if n.fanin[0] < 0 {
				return nil, ScanLayout{}, fmt.Errorf("netlist: flop %q has unconnected D", n.name)
			}
			flops = append(flops, id)
		case n.typ == Input:
			pis = append(pis, id)
		}
	}
	if len(flops) == 0 {
		return nil, ScanLayout{}, fmt.Errorf("netlist: design %q has no flip-flops; use Builder", b.name)
	}
	cells := len(flops) + len(pis)
	chainLen := (cells + nChains - 1) / nChains
	padded := nChains * chainLen

	cb := NewBuilder(b.name + ".scan")
	layout := ScanLayout{Chains: nChains, ChainLen: chainLen}
	// idMap maps sequential net IDs to combinational gate IDs.
	idMap := make(map[int]int, len(b.nodes))
	for _, ff := range flops {
		idMap[ff] = cb.Input(b.nodes[ff].name + ".Q")
		layout.CellNames = append(layout.CellNames, b.nodes[ff].name)
	}
	for _, pi := range pis {
		idMap[pi] = cb.Input(b.nodes[pi].name)
		layout.CellNames = append(layout.CellNames, b.nodes[pi].name)
	}
	for i := cells; i < padded; i++ {
		cb.Input(fmt.Sprintf("pad%d", i-cells))
		layout.CellNames = append(layout.CellNames, fmt.Sprintf("pad%d", i-cells))
		layout.PadCells = append(layout.PadCells, i)
	}
	// Combinational gates in declaration order; fanin of a flop Q reads
	// its pseudo-primary input.
	for id, n := range b.nodes {
		if n.isFF || n.typ == Input {
			continue
		}
		fanin := make([]int, len(n.fanin))
		for i, f := range n.fanin {
			mapped, ok := idMap[f]
			if !ok {
				return nil, ScanLayout{}, fmt.Errorf("netlist: gate %q reads net %d declared later (feedback must pass through a flop)", n.name, f)
			}
			fanin[i] = mapped
		}
		idMap[id] = cb.Gate(n.typ, n.name, fanin...)
	}
	// Pseudo-primary outputs: each flop's D; then primary outputs.
	for _, ff := range flops {
		d := b.nodes[ff].fanin[0]
		mapped, ok := idMap[d]
		if !ok {
			return nil, ScanLayout{}, fmt.Errorf("netlist: flop %q D net unmapped", b.nodes[ff].name)
		}
		cb.Output(mapped)
	}
	for _, o := range b.outs {
		mapped, ok := idMap[o]
		if !ok {
			return nil, ScanLayout{}, fmt.Errorf("netlist: output net %d unmapped", o)
		}
		cb.Output(mapped)
	}
	c, err := cb.Build()
	if err != nil {
		return nil, ScanLayout{}, err
	}
	return c, layout, nil
}

// Counter builds an n-bit synchronous binary up-counter with enable —
// a sequential design with a known next-state oracle for tests:
// state' = state + enable.
func Counter(n int) *SeqBuilder {
	b := NewSeqBuilder(fmt.Sprintf("counter%d", n))
	en := b.Input("en")
	q := make([]int, n)
	for i := 0; i < n; i++ {
		q[i] = b.DFF(fmt.Sprintf("q%d", i))
	}
	carry := en
	for i := 0; i < n; i++ {
		sum := b.Gate(Xor, fmt.Sprintf("sum%d", i), q[i], carry)
		carry = b.Gate(And, fmt.Sprintf("cy%d", i), q[i], carry)
		b.ConnectD(q[i], sum)
		b.Output(q[i])
	}
	return b
}
