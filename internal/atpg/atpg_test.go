package atpg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func TestValBasics(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Fatal("Not wrong")
	}
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool wrong")
	}
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatal("String wrong")
	}
	if One.Bool() != true || Zero.Bool() != false {
		t.Fatal("Bool wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bool() on X did not panic")
		}
	}()
	_ = X.Bool()
}

func TestEval3AgainstEval(t *testing.T) {
	types := []netlist.GateType{netlist.Buf, netlist.Not, netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		for _, ty := range types {
			n := len(raw)
			if ty == netlist.Buf || ty == netlist.Not {
				n = 1
			}
			if n > 4 {
				n = 4
			}
			in := make([]Val, n)
			anyX := false
			for i := 0; i < n; i++ {
				in[i] = Val(raw[i] % 3)
				if in[i] == X {
					anyX = true
				}
			}
			got := eval3(ty, in)
			if !anyX {
				bin := make([]bool, n)
				for i := range bin {
					bin[i] = in[i] == One
				}
				if got == X || got.Bool() != ty.Eval(bin) {
					return false
				}
				continue
			}
			// With X inputs, the result must be consistent with every
			// completion: if eval3 says definite v, all completions give v.
			if got == X {
				continue
			}
			if !allCompletionsEqual(ty, in, got.Bool()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func allCompletionsEqual(ty netlist.GateType, in []Val, want bool) bool {
	xPos := []int{}
	bin := make([]bool, len(in))
	for i, v := range in {
		if v == X {
			xPos = append(xPos, i)
		} else {
			bin[i] = v == One
		}
	}
	for m := 0; m < 1<<len(xPos); m++ {
		for k, p := range xPos {
			bin[p] = m>>uint(k)&1 == 1
		}
		if ty.Eval(bin) != want {
			return false
		}
	}
	return true
}

func TestCubeHelpers(t *testing.T) {
	c := Cube{One, X, Zero, X}
	if c.CareBits() != 2 {
		t.Fatalf("CareBits = %d", c.CareBits())
	}
	if c.String() != "1X0X" {
		t.Fatalf("String = %q", c.String())
	}
	filled := c.Fill(func() bool { return true })
	want := []bool{true, true, false, true}
	for i := range want {
		if filled[i] != want[i] {
			t.Fatalf("Fill = %v", filled)
		}
	}
}

// TestPODEMOnAnd2 checks the textbook case: testing a/sa0 on AND(a,b)
// requires a=1, b=1.
func TestPODEMOnAnd2(t *testing.T) {
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	bb := b.Input("b")
	g := b.Gate(netlist.And, "g", a, bb)
	b.Output(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(c, 100)
	cube, status := gen.Generate(netlist.Fault{Gate: a, Pin: netlist.StemPin, Stuck: false})
	if status != Detected {
		t.Fatalf("status = %v", status)
	}
	if cube[0] != One || cube[1] != One {
		t.Fatalf("cube = %v, want 11", cube)
	}
}

// TestPODEMFindsRedundancy: in y = OR(a, NOT a) the output is constant
// 1, so y/sa1 is undetectable.
func TestPODEMFindsRedundancy(t *testing.T) {
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	na := b.Gate(netlist.Not, "na", a)
	y := b.Gate(netlist.Or, "y", a, na)
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(c, 1000)
	_, status := gen.Generate(netlist.Fault{Gate: y, Pin: netlist.StemPin, Stuck: true})
	if status != Redundant {
		t.Fatalf("status = %v, want redundant", status)
	}
	// y/sa0 must be detectable by any pattern.
	cube, status := gen.Generate(netlist.Fault{Gate: y, Pin: netlist.StemPin, Stuck: false})
	if status != Detected {
		t.Fatalf("sa0 status = %v", status)
	}
	_ = cube
}

// TestPODEMCubesVerifiedBySimulation generates cubes for every
// collapsed fault of several circuits and validates each cube with the
// independent fault simulator.
func TestPODEMCubesVerifiedBySimulation(t *testing.T) {
	circuits := []*netlist.Circuit{
		netlist.C17(),
		netlist.RippleAdder(4),
		netlist.Random(11, netlist.RandomOptions{Inputs: 10, Gates: 80, Outputs: 8}),
	}
	rng := rand.New(rand.NewSource(5))
	for _, c := range circuits {
		gen := NewGenerator(c, 200)
		for _, f := range netlist.CollapsedFaults(c) {
			cube, status := gen.Generate(f)
			if status != Detected {
				continue // redundant or aborted: nothing to verify
			}
			pattern := cube.Fill(func() bool { return rng.Intn(2) == 1 })
			fs := faultsim.NewFaultSim(c, []netlist.Fault{f})
			batch, err := faultsim.BatchFromBools([][]bool{pattern})
			if err != nil {
				t.Fatal(err)
			}
			dets, err := fs.SimulateBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(dets) != 1 {
				t.Fatalf("%s: cube %v for fault %v not confirmed by simulation", c.Name, cube, f)
			}
		}
	}
}

// TestPODEMFullCoverageC17: c17 is fully testable, so PODEM alone must
// reach 100% coverage.
func TestPODEMFullCoverageC17(t *testing.T) {
	c := netlist.C17()
	faults := netlist.CollapsedFaults(c)
	ts, err := GenerateAll(c, faults, rand.New(rand.NewSource(1)), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Redundant) != 0 || len(ts.Aborted) != 0 {
		t.Fatalf("redundant %v aborted %v on fully testable c17", ts.Redundant, ts.Aborted)
	}
	if ts.Detected != len(faults) {
		t.Fatalf("detected %d of %d", ts.Detected, len(faults))
	}
	if ts.Coverage(len(faults)) != 1 {
		t.Fatalf("coverage = %v", ts.Coverage(len(faults)))
	}
	// Compaction: far fewer patterns than faults.
	if len(ts.Patterns) >= len(faults) {
		t.Fatalf("no cross-detection compaction: %d patterns for %d faults", len(ts.Patterns), len(faults))
	}
	if ts.CareBits <= 0 {
		t.Fatal("no care bits recorded")
	}
}

// TestGenerateAllAdder exercises the full flow on an arithmetic circuit
// where XOR chains make backtrace harder.
func TestGenerateAllAdder(t *testing.T) {
	c := netlist.RippleAdder(6)
	faults := netlist.CollapsedFaults(c)
	ts, err := GenerateAll(c, faults, rand.New(rand.NewSource(2)), 200)
	if err != nil {
		t.Fatal(err)
	}
	cov := ts.Coverage(len(faults))
	if cov < 0.99 {
		t.Fatalf("adder coverage = %v (aborted %d, redundant %d)", cov, len(ts.Aborted), len(ts.Redundant))
	}
}

// TestGenerateAllWorkersDeterministic: the test set produced with
// sharded fault-dropping between PODEM targets must match the serial
// one exactly — cube order, patterns, detection count and care bits.
func TestGenerateAllWorkersDeterministic(t *testing.T) {
	c := netlist.Random(21, netlist.RandomOptions{Inputs: 12, Gates: 150, Outputs: 10})
	faults := netlist.CollapsedFaults(c)
	serial, err := GenerateAllWorkers(c, faults, rand.New(rand.NewSource(4)), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := GenerateAllWorkers(c, faults, rand.New(rand.NewSource(4)), 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("test sets differ between workers=1 and workers=8:\nserial:   detected=%d cubes=%d care=%d\nparallel: detected=%d cubes=%d care=%d",
			serial.Detected, len(serial.Cubes), serial.CareBits,
			parallel.Detected, len(parallel.Cubes), parallel.CareBits)
	}
}

func TestStatusString(t *testing.T) {
	if Detected.String() != "detected" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Fatal("Status.String wrong")
	}
}

// TestCubeFillProperty: Fill preserves every care bit and replaces
// exactly the X positions.
func TestCubeFillProperty(t *testing.T) {
	f := func(raw []byte, fillBits uint64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		cube := make(Cube, len(raw))
		for i, b := range raw {
			cube[i] = Val(b % 3)
		}
		k := 0
		filled := cube.Fill(func() bool {
			v := fillBits>>uint(k%64)&1 == 1
			k++
			return v
		})
		xSeen := 0
		for i, v := range cube {
			switch v {
			case X:
				if filled[i] != (fillBits>>uint(xSeen%64)&1 == 1) {
					return false
				}
				xSeen++
			default:
				if filled[i] != v.Bool() {
					return false
				}
			}
		}
		return k == xSeen && cube.CareBits() == len(cube)-xSeen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
