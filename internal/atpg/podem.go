package atpg

import (
	"sort"

	"repro/internal/netlist"
)

// Status classifies the outcome of a PODEM run for one fault.
type Status int

const (
	// Detected means a test cube was found.
	Detected Status = iota
	// Redundant means the decision tree was exhausted: no test exists.
	Redundant
	// Aborted means the backtrack limit was hit before a verdict.
	Aborted
)

// String returns the outcome mnemonic.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	default:
		return "aborted"
	}
}

// Generator runs PODEM on one circuit. It is not safe for concurrent
// use; create one generator per goroutine.
type Generator struct {
	c             *netlist.Circuit
	MaxBacktracks int

	good    []Val
	faulty  []Val
	inPos   map[int]int // gate ID of input -> position in Inputs
	scratch []Val
	// scoap guides backtrace (controllability) and D-frontier choice
	// (observability).
	scoap *netlist.Testability
}

// NewGenerator returns a PODEM generator with the given backtrack
// limit (a typical value is 100; higher finds more redundancies).
func NewGenerator(c *netlist.Circuit, maxBacktracks int) *Generator {
	if maxBacktracks <= 0 {
		maxBacktracks = 100
	}
	inPos := make(map[int]int, c.NumInputs())
	for i, id := range c.Inputs {
		inPos[id] = i
	}
	return &Generator{
		c:             c,
		MaxBacktracks: maxBacktracks,
		good:          make([]Val, c.NumGates()),
		faulty:        make([]Val, c.NumGates()),
		inPos:         inPos,
		scratch:       make([]Val, 8),
		scoap:         netlist.AnalyzeTestability(c),
	}
}

// decision is one PI assignment on the PODEM decision stack.
type decision struct {
	pi      int // gate ID of the input
	val     Val
	flipped bool // both branches tried
}

// Generate attempts to derive a test cube for fault f. The returned
// status says whether the cube is valid (Detected), the fault is proven
// untestable (Redundant), or the search gave up (Aborted).
func (g *Generator) Generate(f netlist.Fault) (Cube, Status) {
	assign := make(map[int]Val) // PI gate ID -> value
	var stack []decision
	backtracks := 0

	for {
		g.simulate(f, assign)
		if g.detectedAtOutput() {
			cube := make(Cube, g.c.NumInputs())
			for i := range cube {
				cube[i] = X
			}
			for pi, v := range assign {
				cube[g.inPos[pi]] = v
			}
			return cube, Detected
		}
		objGate, objVal, feasible := g.objective(f)
		if feasible {
			pi, v := g.backtrace(objGate, objVal)
			if pi >= 0 {
				assign[pi] = v
				stack = append(stack, decision{pi: pi, val: v})
				continue
			}
			// No X-path to any input: treat as conflict.
		}
		// Conflict: flip the most recent unflipped decision.
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = top.val.Not()
				assign[top.pi] = top.val
				flipped = true
				backtracks++
				break
			}
			delete(assign, top.pi)
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			return nil, Redundant
		}
		if backtracks > g.MaxBacktracks {
			return nil, Aborted
		}
	}
}

// simulate performs the composite good/faulty three-valued simulation
// under the partial PI assignment, forcing the fault in the faulty
// machine.
func (g *Generator) simulate(f netlist.Fault, assign map[int]Val) {
	stuck := FromBool(f.Stuck)
	for _, id := range g.c.Inputs {
		v, ok := assign[id]
		if !ok {
			v = X
		}
		g.good[id] = v
		fv := v
		if f.Pin == netlist.StemPin && id == f.Gate {
			fv = stuck
		}
		g.faulty[id] = fv
	}
	for _, id := range g.c.Order() {
		gate := &g.c.Gates[id]
		n := len(gate.Fanin)
		if n > len(g.scratch) {
			g.scratch = make([]Val, n)
		}
		in := g.scratch[:n]
		for i, src := range gate.Fanin {
			in[i] = g.good[src]
		}
		g.good[id] = eval3(gate.Type, in)
		for i, src := range gate.Fanin {
			in[i] = g.faulty[src]
			if f.Pin != netlist.StemPin && id == f.Gate && i == f.Pin {
				in[i] = stuck
			}
		}
		fv := eval3(gate.Type, in)
		if f.Pin == netlist.StemPin && id == f.Gate {
			fv = stuck
		}
		g.faulty[id] = fv
	}
}

// detectedAtOutput reports whether any output carries a definite
// good/faulty difference (a D or D').
func (g *Generator) detectedAtOutput() bool {
	for _, id := range g.c.Outputs {
		gv, fv := g.good[id], g.faulty[id]
		if gv != X && fv != X && gv != fv {
			return true
		}
	}
	return false
}

// objective returns the next (gate, value) goal: activate the fault if
// it is not yet activated, otherwise advance the D-frontier. feasible is
// false when no progress is possible on this branch.
func (g *Generator) objective(f netlist.Fault) (gate int, val Val, feasible bool) {
	site := f.Gate
	if f.Pin != netlist.StemPin {
		site = g.c.Gates[f.Gate].Fanin[f.Pin]
	}
	want := FromBool(!f.Stuck)
	switch g.good[site] {
	case X:
		// Activate: drive the fault site to the opposite of the stuck
		// value.
		return site, want, true
	case want:
		// Activated; advance the D-frontier below.
	default:
		// Good value equals the stuck value: fault can never be
		// activated on this branch.
		return 0, X, false
	}

	// D-frontier: gates with X output whose fanin carries a definite
	// good/faulty difference. Choose the most observable (SCOAP CO) for
	// the shortest sensitization effort.
	best := -1
	for _, id := range g.frontier(f) {
		if best == -1 || g.scoap.CO[id] < g.scoap.CO[best] {
			best = id
		}
	}
	if best == -1 {
		return 0, X, false
	}
	gt := g.c.Gates[best].Type
	cv, hasCV := gt.ControllingValue()
	objV := One
	if hasCV {
		objV = FromBool(!cv)
	}
	for _, src := range g.c.Gates[best].Fanin {
		if g.good[src] == X {
			return src, objV, true
		}
	}
	return 0, X, false
}

// frontier returns the D-frontier: gates whose composite output is not
// yet determined (good or faulty still X) while at least one fanin
// carries a definite good/faulty difference. For an input-pin (branch)
// fault the difference lives on the branch wire rather than on any gate
// stem, so the reader gate is checked against the forced pin directly.
func (g *Generator) frontier(f netlist.Fault) []int {
	var out []int
	for _, id := range g.c.Order() {
		if g.good[id] != X && g.faulty[id] != X {
			continue
		}
		if f.Pin != netlist.StemPin && id == f.Gate {
			driver := g.c.Gates[id].Fanin[f.Pin]
			if g.good[driver] != X && g.good[driver] != FromBool(f.Stuck) {
				out = append(out, id)
				continue
			}
		}
		for _, src := range g.c.Gates[id].Fanin {
			if g.good[src] != X && g.faulty[src] != X && g.good[src] != g.faulty[src] {
				out = append(out, id)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// backtrace maps an objective (gate, value) back to an unassigned
// primary input and the value to try there, following X-valued fanins
// and accounting for inversions. Fanin choice uses the classic SCOAP
// heuristic: when a single controlling input suffices, take the easiest
// to control; when every input must carry the value, take the hardest
// first so infeasible branches fail fast. It returns pi = -1 when no
// X-path to an input exists.
func (g *Generator) backtrace(gate int, val Val) (pi int, v Val) {
	cur, cv := gate, val
	for steps := 0; steps <= g.c.NumGates(); steps++ {
		gt := &g.c.Gates[cur]
		if gt.Type == netlist.Input {
			return cur, cv
		}
		if gt.Type.Inverting() {
			cv = cv.Not()
		}
		oneSuffices := false
		if ctrl, has := gt.Type.ControllingValue(); has && cv != X {
			oneSuffices = cv.Bool() == ctrl
		}
		next := -1
		nextCost := 0
		for _, src := range gt.Fanin {
			if g.good[src] != X {
				continue
			}
			cost := g.scoap.Controllability(src, cv == One)
			if cv == X {
				cost = minCost(g.scoap.CC0[src], g.scoap.CC1[src])
			}
			better := next == -1 ||
				(oneSuffices && cost < nextCost) ||
				(!oneSuffices && cost > nextCost)
			if better {
				next, nextCost = src, cost
			}
		}
		if next == -1 {
			return -1, X
		}
		cur = next
	}
	return -1, X
}

func minCost(a, b int) int {
	if a < b {
		return a
	}
	return b
}
