package atpg

import (
	"math/rand"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// TestSet is the outcome of deterministic top-off generation for a
// fault list.
type TestSet struct {
	// Cubes are the generated test cubes, one per targeted fault that
	// needed an explicit pattern.
	Cubes []Cube
	// Patterns are the X-filled, fully specified versions of Cubes.
	Patterns [][]bool
	// Detected counts faults removed from the list by the generated
	// patterns, including fortuitous detection of non-targeted faults.
	Detected int
	// Redundant lists faults proven untestable.
	Redundant []netlist.Fault
	// Aborted lists faults the generator gave up on.
	Aborted []netlist.Fault
	// CareBits is the total number of specified bits over all cubes —
	// the raw volume that test data encoding has to store.
	CareBits int
}

// Coverage returns detected / total for the originally targeted list of
// n faults.
func (ts *TestSet) Coverage(n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(ts.Detected) / float64(n)
}

// GenerateAll runs PODEM over the given fault list with cross-detection
// fault dropping: after each generated cube is X-filled and fault-
// simulated, every fault it detects is removed before the next target
// is chosen. This mirrors the standard deterministic top-off flow of
// mixed-mode BIST. The grading fault simulation between PODEM targets
// uses the default worker count (GOMAXPROCS); use GenerateAllWorkers
// to pin it.
//
// The rng fills don't-care positions (deterministic for a fixed seed).
func GenerateAll(c *netlist.Circuit, faults []netlist.Fault, rng *rand.Rand, maxBacktracks int) (*TestSet, error) {
	return GenerateAllWorkers(c, faults, rng, maxBacktracks, 0)
}

// GenerateAllWorkers is GenerateAll with an explicit worker count for
// the fault-dropping simulation between PODEM targets (0 = GOMAXPROCS,
// 1 = serial). The generated test set is identical for every worker
// count.
func GenerateAllWorkers(c *netlist.Circuit, faults []netlist.Fault, rng *rand.Rand, maxBacktracks, workers int) (*TestSet, error) {
	gen := NewGenerator(c, maxBacktracks)
	fs := faultsim.NewFaultSim(c, faults).SetWorkers(workers)
	detected := make(map[netlist.Fault]bool, len(faults))
	ts := &TestSet{}
	for _, target := range faults {
		if detected[target] {
			continue
		}
		cube, status := gen.Generate(target)
		switch status {
		case Redundant:
			ts.Redundant = append(ts.Redundant, target)
			continue
		case Aborted:
			ts.Aborted = append(ts.Aborted, target)
			continue
		}
		pattern := cube.Fill(func() bool { return rng.Intn(2) == 1 })
		batch, err := faultsim.BatchFromBools([][]bool{pattern})
		if err != nil {
			return nil, err
		}
		dets, err := fs.SimulateBatch(batch)
		if err != nil {
			return nil, err
		}
		for _, d := range dets {
			detected[d.Fault] = true
		}
		ts.Cubes = append(ts.Cubes, cube)
		ts.Patterns = append(ts.Patterns, pattern)
		ts.CareBits += cube.CareBits()
		if !detected[target] {
			// The filled pattern failed to detect its own target — PODEM
			// and the fault simulator disagree, which would be a bug.
			// Classify as aborted to guarantee progress rather than loop.
			ts.Aborted = append(ts.Aborted, target)
		}
	}
	ts.Detected = len(detected)
	return ts, nil
}
