// Package atpg implements deterministic test pattern generation for
// single stuck-at faults using the PODEM algorithm (Goel, 1981) over a
// three-valued composite good/faulty simulation. It provides the
// deterministic top-off patterns of the paper's mixed-mode BIST
// profiles: after N pseudo-random patterns, PODEM targets the remaining
// undetected faults and the resulting test cubes determine the encoded
// deterministic test data volume s(b^D).
package atpg

import "repro/internal/netlist"

// Val is a three-valued logic value.
type Val byte

const (
	// Zero is logic 0.
	Zero Val = iota
	// One is logic 1.
	One
	// X is unassigned / don't-care.
	X
)

// String returns "0", "1" or "X".
func (v Val) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// FromBool converts a bool to a definite value.
func FromBool(b bool) Val {
	if b {
		return One
	}
	return Zero
}

// Bool converts a definite value to bool; X panics.
func (v Val) Bool() bool {
	switch v {
	case Zero:
		return false
	case One:
		return true
	}
	panic("atpg: Bool() on X")
}

// Not complements a value; X stays X.
func (v Val) Not() Val {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// eval3 computes the three-valued output of a gate.
func eval3(t netlist.GateType, in []Val) Val {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return in[0].Not()
	case netlist.And, netlist.Nand:
		v := One
		for _, a := range in {
			if a == Zero {
				v = Zero
				break
			}
			if a == X {
				v = X
			}
		}
		if t == netlist.Nand {
			return v.Not()
		}
		return v
	case netlist.Or, netlist.Nor:
		v := Zero
		for _, a := range in {
			if a == One {
				v = One
				break
			}
			if a == X {
				v = X
			}
		}
		if t == netlist.Nor {
			return v.Not()
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := Zero
		for _, a := range in {
			if a == X {
				return X
			}
			if a == One {
				v = v.Not()
			}
		}
		if t == netlist.Xnor {
			return v.Not()
		}
		return v
	default:
		panic("atpg: eval3 on " + t.String())
	}
}

// Cube is a test cube: one Val per circuit input, X marking don't-care
// positions.
type Cube []Val

// CareBits returns the number of specified (non-X) positions — the
// quantity that drives deterministic test data encoding volume.
func (c Cube) CareBits() int {
	n := 0
	for _, v := range c {
		if v != X {
			n++
		}
	}
	return n
}

// Fill returns a fully specified pattern, replacing every X by the
// value produced by fill (called once per X position, in order).
func (c Cube) Fill(fill func() bool) []bool {
	out := make([]bool, len(c))
	for i, v := range c {
		switch v {
		case X:
			out[i] = fill()
		default:
			out[i] = v.Bool()
		}
	}
	return out
}

// String renders the cube like "01X1X".
func (c Cube) String() string {
	b := make([]byte, len(c))
	for i, v := range c {
		b[i] = v.String()[0]
	}
	return string(b)
}
