package diagnosis

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/stumps"
)

// RefineResult is the outcome of two-stage diagnosis.
type RefineResult struct {
	// Coarse is the ranked candidate set after the periodic session's
	// normal-window fail data.
	Coarse []Candidate
	// Fine is the ranked candidate set after re-running the same
	// pattern sequence with finer diagnostic windows.
	Fine []Candidate
	// CoarseAmbiguity / FineAmbiguity count the candidates sharing the
	// top score in each stage.
	CoarseAmbiguity int
	FineAmbiguity   int
}

func topAmbiguity(cands []Candidate) int {
	if len(cands) == 0 {
		return 0
	}
	top := cands[0].Score
	n := 0
	for _, c := range cands {
		if c.Score < top {
			break
		}
		n++
	}
	return n
}

// RefineDiagnosis performs the two-stage in-field diagnosis the paper's
// references [9]/[10] build on. Stage 1 is the periodic session with
// its configured (coarse) windows — small response data, shipped every
// shut-off. When a device fails, stage 2 re-runs the *same* pattern
// sequence with fineWindow patterns per window: the extra intermediate
// signatures split equivalence classes the coarse fingerprints could
// not distinguish, narrowing the candidate list for failure analysis.
//
// The faulty device is modeled by the injected fault; fineWindow must
// be positive and smaller than the dictionary session's window size.
// Only the coarse stage's top candidates are re-simulated — the fine
// dictionary stays cheap.
func RefineDiagnosis(d *Dictionary, fineWindow int, fault netlist.Fault) (RefineResult, error) {
	coarseCfg := d.Session.Cfg
	if fineWindow <= 0 || fineWindow >= coarseCfg.WindowPatterns {
		return RefineResult{}, fmt.Errorf("diagnosis: fine window %d must be in 1..%d", fineWindow, coarseCfg.WindowPatterns-1)
	}
	// Stage 1: coarse fail data and ranking.
	coarseFD, err := d.Session.RunDiagnostic(d.NPatterns, fault)
	if err != nil {
		return RefineResult{}, err
	}
	res := RefineResult{Coarse: d.Diagnose(coarseFD)}
	res.CoarseAmbiguity = topAmbiguity(res.Coarse)
	if res.CoarseAmbiguity <= 1 {
		res.Fine = res.Coarse
		res.FineAmbiguity = res.CoarseAmbiguity
		return res, nil
	}

	// Stage 2: same LFSR sequence, finer windows, dictionary over the
	// coarse top class only.
	fineCfg := coarseCfg
	fineCfg.WindowPatterns = fineWindow
	fineSession, err := stumps.NewSession(d.Session.Circuit, fineCfg)
	if err != nil {
		return RefineResult{}, err
	}
	var suspects []netlist.Fault
	top := res.Coarse[0].Score
	for _, c := range res.Coarse {
		if c.Score < top {
			break
		}
		suspects = append(suspects, c.Fault)
	}
	fineDict, err := BuildDictionary(fineSession, suspects, d.NPatterns)
	if err != nil {
		return RefineResult{}, err
	}
	fineFD, err := fineSession.RunDiagnostic(d.NPatterns, fault)
	if err != nil {
		return RefineResult{}, err
	}
	res.Fine = fineDict.Diagnose(fineFD)
	res.FineAmbiguity = topAmbiguity(res.Fine)
	return res, nil
}
