// Package diagnosis implements the downstream use of the collected fail
// data (paper Sections I and III): signature-based logic diagnosis of a
// faulty IC from the few intermediate MISR signatures a BIST session
// ships to the gateway, and system-level identification of the faulty
// ECU for workshop repair.
package diagnosis

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/stumps"
)

// fingerprint is the window→signature map of one fault's fail data.
type fingerprint map[int]uint64

// Dictionary is a pre-computed fault dictionary: the expected fail data
// of every candidate fault under one fixed BIST session.
type Dictionary struct {
	Session   *stumps.Session
	NPatterns int

	entries map[string]fingerprint // fault key -> fingerprint
	faults  []netlist.Fault
}

// BuildDictionary simulates every candidate fault through the session
// and records its fail-data fingerprint. Faults whose fail data is
// empty (undetected or signature-aliased) are stored with an empty
// fingerprint — they are indistinguishable from a fault-free device.
func BuildDictionary(s *stumps.Session, faults []netlist.Fault, nPatterns int) (*Dictionary, error) {
	d := &Dictionary{
		Session:   s,
		NPatterns: nPatterns,
		entries:   make(map[string]fingerprint, len(faults)),
		faults:    append([]netlist.Fault(nil), faults...),
	}
	golden, err := s.Signatures(nPatterns, nil)
	if err != nil {
		return nil, err
	}
	for _, f := range faults {
		fault := f
		sigs, err := s.Signatures(nPatterns, &fault)
		if err != nil {
			return nil, fmt.Errorf("diagnosis: fault %v: %w", f, err)
		}
		fp := make(fingerprint)
		for w := range golden {
			if sigs[w] != golden[w] {
				fp[w] = sigs[w]
			}
		}
		d.entries[f.String()] = fp
	}
	return d, nil
}

// Faults returns the candidate fault list of the dictionary.
func (d *Dictionary) Faults() []netlist.Fault {
	return append([]netlist.Fault(nil), d.faults...)
}

// Candidate is one ranked diagnosis.
type Candidate struct {
	Fault netlist.Fault
	// Score in [0,1]: Jaccard similarity between the observed fail data
	// and the dictionary fingerprint (1 = exact match).
	Score float64
}

// Diagnose ranks the dictionary faults against observed fail data,
// best match first. Candidates with zero score are omitted. Ties are
// broken by fault order for determinism.
func (d *Dictionary) Diagnose(fd stumps.FailData) []Candidate {
	observed := make(fingerprint, len(fd.Entries))
	for _, e := range fd.Entries {
		observed[e.Window] = e.Got
	}
	var out []Candidate
	for _, f := range d.faults {
		fp := d.entries[f.String()]
		score := jaccard(observed, fp)
		if score > 0 {
			out = append(out, Candidate{Fault: f, Score: score})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// jaccard compares two fingerprints: |matching entries| / |union|.
func jaccard(a, b fingerprint) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	match := 0
	union := len(b)
	for w, sig := range a {
		if bsig, ok := b[w]; ok && bsig == sig {
			match++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(match) / float64(union)
}

// DiagnosabilityReport summarizes how well the session's fail data
// distinguishes the fault population.
type DiagnosabilityReport struct {
	Faults int
	// Detected counts faults with non-empty fail data.
	Detected int
	// ExactTop counts detected faults whose own dictionary entry ranks
	// first (score 1.0, possibly tied with equivalent faults).
	ExactTop int
	// AmbiguityAvg is the average number of candidates sharing the top
	// score for detected faults — the equivalence-class size seen
	// through the MISR.
	AmbiguityAvg float64
}

// EvaluateDiagnosability injects every dictionary fault, diagnoses its
// fail data, and scores the outcome.
func (d *Dictionary) EvaluateDiagnosability() (DiagnosabilityReport, error) {
	rep := DiagnosabilityReport{Faults: len(d.faults)}
	totalAmb := 0
	for _, f := range d.faults {
		fault := f
		fd, err := d.Session.RunDiagnostic(d.NPatterns, fault)
		if err != nil {
			return rep, err
		}
		if fd.Pass() {
			continue
		}
		rep.Detected++
		cands := d.Diagnose(fd)
		if len(cands) == 0 {
			continue
		}
		top := cands[0].Score
		amb := 0
		hit := false
		for _, c := range cands {
			if c.Score < top {
				break
			}
			amb++
			if c.Fault == f {
				hit = true
			}
		}
		if hit && top == 1.0 {
			rep.ExactTop++
		}
		totalAmb += amb
	}
	if rep.Detected > 0 {
		rep.AmbiguityAvg = float64(totalAmb) / float64(rep.Detected)
	}
	return rep, nil
}
