package diagnosis

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/stumps"
)

// ECUReport is the fail data one ECU ships to the central gateway after
// its BIST session.
type ECUReport struct {
	ECU  string
	Fail stumps.FailData
}

// LocateFaultyECUs returns the ECUs whose fail data is non-empty — the
// workshop-repair decision: replace exactly these units. The result is
// sorted for determinism.
func LocateFaultyECUs(reports []ECUReport) []string {
	var out []string
	for _, r := range reports {
		if !r.Fail.Pass() {
			out = append(out, r.ECU)
		}
	}
	sort.Strings(out)
	return out
}

// IdentificationRate measures the paper's "test quality as ECU
// identification success rate": the fraction of candidate faults whose
// injection yields non-empty fail data under the session (detected and
// not signature-aliased).
func IdentificationRate(s *stumps.Session, faults []netlist.Fault, nPatterns int) (float64, error) {
	if len(faults) == 0 {
		return 1, nil
	}
	hits := 0
	for _, f := range faults {
		fault := f
		fd, err := s.RunDiagnostic(nPatterns, fault)
		if err != nil {
			return 0, err
		}
		if !fd.Pass() {
			hits++
		}
	}
	return float64(hits) / float64(len(faults)), nil
}

// FunctionalVsStructural compares functional-style testing against a
// structural BIST session on the same CUT (experiment E6; the paper
// cites ~47 % structural coverage for functional tests [2]).
//
// Functional tests are modeled as nFunc fixed operational patterns — a
// small, biased pattern set exercising only typical input activity
// (random over a restricted input subspace: a fraction of inputs is
// held constant, as configuration pins would be).
type Comparison struct {
	FunctionalCoverage float64
	StructuralCoverage float64
	Faults             int
}

// CompareFunctionalVsStructural fault-simulates both pattern sources
// over the same collapsed fault list.
func CompareFunctionalVsStructural(c *netlist.Circuit, cfg stumps.Config, nFunc, nBIST int, seed int64) (Comparison, error) {
	faults := netlist.CollapsedFaults(c)
	cmp := Comparison{Faults: len(faults)}

	// Functional phase: restricted input activity.
	rng := rand.New(rand.NewSource(seed))
	frozen := make([]bool, c.NumInputs())
	frozenVal := make([]bool, c.NumInputs())
	for i := range frozen {
		// Two thirds of the inputs behave as quasi-static configuration
		// or mode pins during operation.
		if rng.Intn(3) != 0 {
			frozen[i] = true
			frozenVal[i] = rng.Intn(2) == 1
		}
	}
	fsFunc := faultsim.NewFaultSim(c, faults)
	done := 0
	for done < nFunc {
		n := nFunc - done
		if n > 64 {
			n = 64
		}
		words := make([]uint64, c.NumInputs())
		for i := range words {
			if frozen[i] {
				if frozenVal[i] {
					words[i] = ^uint64(0)
				}
			} else {
				words[i] = rng.Uint64()
			}
		}
		if _, err := fsFunc.SimulateBatch(faultsim.Batch{Words: words, N: n}); err != nil {
			return cmp, err
		}
		done += n
	}
	cmp.FunctionalCoverage = fsFunc.Coverage()

	// Structural phase: the real LFSR BIST session patterns.
	prpg, err := stumps.NewPRPG(cfg)
	if err != nil {
		return cmp, err
	}
	if prpg.NumInputs() != c.NumInputs() {
		return cmp, fmt.Errorf("diagnosis: scan config supplies %d inputs, circuit has %d", prpg.NumInputs(), c.NumInputs())
	}
	fsBIST := faultsim.NewFaultSim(c, faults)
	if _, err := fsBIST.RunCoverage(prpg, nBIST); err != nil {
		return cmp, err
	}
	cmp.StructuralCoverage = fsBIST.Coverage()
	return cmp, nil
}
