package diagnosis

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/stumps"
)

func testSession(t *testing.T, seed int64) (*netlist.Circuit, *stumps.Session, stumps.Config) {
	t.Helper()
	cfg := stumps.Config{Chains: 6, ChainLen: 8, Seed: 3, WindowPatterns: 16}
	c := netlist.ScanCUT(seed, cfg.Chains, cfg.ChainLen, 4)
	s, err := stumps.NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, cfg
}

// detectedFaults returns faults provably detected by the session's
// first nPatterns patterns, per the fault simulator.
func detectedFaults(t *testing.T, c *netlist.Circuit, cfg stumps.Config, nPatterns, limit int) []netlist.Fault {
	t.Helper()
	fs := faultsim.NewFaultSim(c, netlist.CollapsedFaults(c))
	prpg, err := stumps.NewPRPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.RunCoverage(prpg, nPatterns); err != nil {
		t.Fatal(err)
	}
	dets := fs.Detections()
	var out []netlist.Fault
	for _, d := range dets {
		out = append(out, d.Fault)
		if len(out) == limit {
			break
		}
	}
	return out
}

func TestDictionaryDiagnosesInjectedFault(t *testing.T) {
	c, s, cfg := testSession(t, 31)
	faults := detectedFaults(t, c, cfg, 128, 24)
	if len(faults) < 5 {
		t.Skipf("only %d detected faults", len(faults))
	}
	dict, err := BuildDictionary(s, faults, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults[:5] {
		fd, err := s.RunDiagnostic(128, f)
		if err != nil {
			t.Fatal(err)
		}
		cands := dict.Diagnose(fd)
		if len(cands) == 0 {
			t.Fatalf("fault %v: no candidates", f)
		}
		// The injected fault must be among the top-scored candidates.
		top := cands[0].Score
		found := false
		for _, cand := range cands {
			if cand.Score < top {
				break
			}
			if cand.Fault == f {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v not in top candidates (top=%v %v)", f, cands[0].Fault, top)
		}
		if top != 1.0 {
			t.Fatalf("fault %v: own fingerprint does not match itself (score %v)", f, top)
		}
	}
}

func TestDiagnoseFaultFreePassesQuietly(t *testing.T) {
	c, s, cfg := testSession(t, 32)
	faults := detectedFaults(t, c, cfg, 64, 8)
	if len(faults) == 0 {
		t.Skip("no detected faults")
	}
	dict, err := BuildDictionary(s, faults, 64)
	if err != nil {
		t.Fatal(err)
	}
	cands := dict.Diagnose(stumps.FailData{Windows: 4})
	if len(cands) != 0 {
		t.Fatalf("fault-free data produced candidates: %v", cands)
	}
}

func TestEvaluateDiagnosability(t *testing.T) {
	c, s, cfg := testSession(t, 33)
	faults := detectedFaults(t, c, cfg, 96, 16)
	if len(faults) < 8 {
		t.Skipf("only %d detected faults", len(faults))
	}
	dict, err := BuildDictionary(s, faults, 96)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dict.EvaluateDiagnosability()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != len(faults) {
		t.Fatalf("report faults = %d", rep.Faults)
	}
	// All these faults are detected by construction.
	if rep.Detected != len(faults) {
		t.Fatalf("detected = %d of %d", rep.Detected, len(faults))
	}
	if rep.ExactTop < rep.Detected/2 {
		t.Fatalf("only %d of %d exact top diagnoses", rep.ExactTop, rep.Detected)
	}
	if rep.AmbiguityAvg < 1 {
		t.Fatalf("ambiguity = %v", rep.AmbiguityAvg)
	}
}

func TestLocateFaultyECUs(t *testing.T) {
	reports := []ECUReport{
		{ECU: "ecu03", Fail: stumps.FailData{Windows: 4, Entries: []stumps.FailEntry{{Window: 1, Got: 5, Want: 6}}}},
		{ECU: "ecu01", Fail: stumps.FailData{Windows: 4}},
		{ECU: "ecu02", Fail: stumps.FailData{Windows: 4, Entries: []stumps.FailEntry{{Window: 0, Got: 1, Want: 2}}}},
	}
	got := LocateFaultyECUs(reports)
	if len(got) != 2 || got[0] != "ecu02" || got[1] != "ecu03" {
		t.Fatalf("located = %v", got)
	}
	if got := LocateFaultyECUs(nil); len(got) != 0 {
		t.Fatalf("empty fleet located %v", got)
	}
}

func TestIdentificationRateMatchesDetection(t *testing.T) {
	c, s, cfg := testSession(t, 34)
	faults := detectedFaults(t, c, cfg, 96, 12)
	if len(faults) < 6 {
		t.Skip("not enough detected faults")
	}
	rate, err := IdentificationRate(s, faults, 96)
	if err != nil {
		t.Fatal(err)
	}
	// These faults are all detectable; only MISR aliasing may lose a few.
	if rate < 0.9 {
		t.Fatalf("identification rate = %v", rate)
	}
	if r, err := IdentificationRate(s, nil, 96); err != nil || r != 1 {
		t.Fatalf("empty fault list: %v, %v", r, err)
	}
}

// TestFunctionalVsStructural reproduces the Section I motivation: the
// structural BIST clearly out-covers functional-style patterns on the
// same fault population.
func TestFunctionalVsStructural(t *testing.T) {
	cfg := stumps.Config{Chains: 6, ChainLen: 8, Seed: 5, WindowPatterns: 16}
	c := netlist.ScanCUT(35, cfg.Chains, cfg.ChainLen, 4)
	cmp, err := CompareFunctionalVsStructural(c, cfg, 256, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Faults == 0 {
		t.Fatal("no faults")
	}
	if cmp.StructuralCoverage <= cmp.FunctionalCoverage {
		t.Fatalf("structural %v not above functional %v", cmp.StructuralCoverage, cmp.FunctionalCoverage)
	}
	if cmp.FunctionalCoverage <= 0 || cmp.FunctionalCoverage >= 1 {
		t.Fatalf("functional coverage = %v", cmp.FunctionalCoverage)
	}
}

func TestCompareRejectsShapeMismatch(t *testing.T) {
	cfg := stumps.Config{Chains: 4, ChainLen: 4}
	if _, err := CompareFunctionalVsStructural(netlist.C17(), cfg, 8, 8, 1); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestJaccard(t *testing.T) {
	a := fingerprint{1: 10, 2: 20}
	if s := jaccard(a, a); s != 1 {
		t.Fatalf("self = %v", s)
	}
	b := fingerprint{1: 10, 3: 30}
	// match 1, union {1,2,3} = 3.
	if s := jaccard(a, b); s != 1.0/3.0 {
		t.Fatalf("partial = %v", s)
	}
	if s := jaccard(fingerprint{}, fingerprint{}); s != 0 {
		t.Fatalf("empty = %v", s)
	}
	// Same window, different signature: no match.
	if s := jaccard(fingerprint{1: 10}, fingerprint{1: 11}); s != 0 {
		t.Fatalf("mismatched sig = %v", s)
	}
}

// TestRefineDiagnosisReducesAmbiguity: finer windows never increase the
// ambiguity of the top equivalence class, and the injected fault stays
// among the top candidates.
func TestRefineDiagnosisReducesAmbiguity(t *testing.T) {
	cfg := stumps.Config{Chains: 6, ChainLen: 8, Seed: 3, WindowPatterns: 64}
	c := netlist.ScanCUT(31, cfg.Chains, cfg.ChainLen, 4)
	s, err := stumps.NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := detectedFaults(t, c, cfg, 128, 32)
	if len(faults) < 10 {
		t.Skipf("only %d detected faults", len(faults))
	}
	dict, err := BuildDictionary(s, faults, 128)
	if err != nil {
		t.Fatal(err)
	}
	refined := 0
	for _, f := range faults[:8] {
		res, err := RefineDiagnosis(dict, 8, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.FineAmbiguity > res.CoarseAmbiguity {
			t.Fatalf("fault %v: ambiguity grew %d -> %d", f, res.CoarseAmbiguity, res.FineAmbiguity)
		}
		if res.FineAmbiguity < res.CoarseAmbiguity {
			refined++
		}
		found := false
		top := res.Fine[0].Score
		for _, cand := range res.Fine {
			if cand.Score < top {
				break
			}
			if cand.Fault == f {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v lost from the fine top class", f)
		}
	}
	t.Logf("refinement split %d of 8 coarse top classes", refined)
}

func TestRefineDiagnosisValidation(t *testing.T) {
	cfg := stumps.Config{Chains: 6, ChainLen: 8, Seed: 3, WindowPatterns: 16}
	c := netlist.ScanCUT(31, cfg.Chains, cfg.ChainLen, 4)
	s, err := stumps.NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := detectedFaults(t, c, cfg, 64, 4)
	if len(faults) == 0 {
		t.Skip("no faults")
	}
	dict, err := BuildDictionary(s, faults, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RefineDiagnosis(dict, 16, faults[0]); err == nil {
		t.Fatal("fine window equal to coarse accepted")
	}
	if _, err := RefineDiagnosis(dict, 0, faults[0]); err == nil {
		t.Fatal("zero fine window accepted")
	}
}
