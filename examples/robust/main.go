// Robustness walk-through: the fail data of a BIST session must cross
// a CAN segment that drops and corrupts frames. The example shows the
// full fault-tolerance ladder of the reproduction —
//
//  1. a seeded ISO 11898 error process degrades the diagnosis slots
//     (Eq. (1) transfer time under errors),
//
//  2. the gateway's reliable session (CRC chunks, bounded retry,
//     exponential backoff) still delivers the record intact,
//
//  3. a harsh error burst exhausts the retry budget: the session
//     falls back to local b^D storage and later RESUMES from
//     the first undelivered chunk — re-deriving the pending window
//     signature with stumps.SignatureWindow instead of re-running the
//     whole test,
//
//  4. and the DSE picks storage mappings with the degraded-mode
//     objective: gateway-stored pattern data is penalized by its
//     expected transfer time and deadline-miss probability.
//
//     go run ./examples/robust
package main

import (
	"fmt"
	"log"

	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/gateway"
	"repro/internal/moea"
	"repro/internal/netlist"
	"repro/internal/objective"
	"repro/internal/stumps"
)

func main() {
	// --- 1. BIST fail data on a bus with a real error process. -------
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 42, WindowPatterns: 16, RestoreCycles: 200, TestClockHz: 40e6}
	const nPatterns = 256
	cut := netlist.ScanCUT(103, cfg.Chains, cfg.ChainLen, 4)
	session, err := stumps.NewSession(cut, cfg)
	if err != nil {
		log.Fatal(err)
	}
	faults := netlist.CollapsedFaults(cut)
	fs := faultsim.NewFaultSim(cut, faults)
	prpg, err := stumps.NewPRPG(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.RunCoverage(prpg, nPatterns); err != nil {
		log.Fatal(err)
	}
	dets := fs.Detections()
	if len(dets) == 0 {
		log.Fatal("no detectable fault in the CUT")
	}
	injected := dets[len(dets)/2].Fault
	fd, err := session.RunDiagnostic(nPatterns, injected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BIST session: %d of %d windows failing after injecting %v\n",
		len(fd.Entries), fd.Windows, injected)

	bus := can.Bus{Name: "diag", BitRate: 500_000}
	ideal := can.TransferTimeMS(int64(fd.SizeBytes(32)), diagFrames())
	degraded := can.TransferTimeMSFaulty(bus, int64(fd.SizeBytes(32)), diagFrames(), can.ErrorModel{BitErrorRate: 1e-4})
	fmt.Printf("Eq. (1) transfer of the %d-byte record: %.2f ms ideal, %.2f ms at BER 1e-4\n\n",
		fd.SizeBytes(32), ideal, degraded)

	// --- 2. Reliable delivery through a lossy channel. ---------------
	var collector gateway.Collector
	scfg := gateway.SessionConfig{ChunkBytes: 32, MaxRetries: 8, BackoffMS: 1}
	res, err := collector.IngestReliable("ecu03", fd, bus, can.ErrorModel{BitErrorRate: 1e-3, Seed: 7}, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reliable session at BER 1e-3: delivered=%v after %d chunk sends (%d retries), %.2f ms\n",
		res.Delivered, res.ChunksSent, res.Retries, res.ElapsedMS)
	fmt.Printf("gateway fail memory now holds %d record(s), %d bytes\n\n",
		len(collector.Records()), collector.StorageBytes())

	// --- 3. Bus-off → local fallback → resume. -----------------------
	harsh := can.ErrorModel{BitErrorRate: 0.005, Seed: 9}
	snd, err := gateway.NewSession("ecu03", 77, fd, scfg)
	if err != nil {
		log.Fatal(err)
	}
	sink, err := gateway.NewAssembler(snd.SessionID(), snd.NumChunks())
	if err != nil {
		log.Fatal(err)
	}
	ch := gateway.NewFaultyChannel(bus, harsh, sink)
	first := snd.Run(ch)
	fmt.Printf("harsh burst (BER 5e-3): delivered=%v, local fallback=%v, controller %v, resume at chunk %d/%d\n",
		first.Delivered, first.LocalFallback, ch.State(), first.ResumeSeq, snd.NumChunks())
	if !first.LocalFallback {
		log.Fatal("expected the harsh burst to force the local-storage fallback")
	}

	// While the record waits in local b^D storage, the pending window
	// signature is recomputable without replaying the whole session:
	// SignatureWindow skips the PRPG to the window's LFSR state.
	w := fd.Windows / 2
	sig, err := session.SignatureWindow(nPatterns, w, &injected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume primitive: window %d signature %#x re-derived standalone\n", w, sig)

	// The bus recovers; the SAME session object resumes from ResumeSeq.
	clean := gateway.NewFaultyChannel(bus, can.ErrorModel{}, sink)
	second := snd.Run(clean)
	fmt.Printf("after recovery: delivered=%v in %d chunk sends (no chunks re-sent), %.2f ms\n",
		second.Delivered, second.ChunksSent, second.ElapsedMS)
	blob, err := sink.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	rec, err := gateway.Unmarshal(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reassembled record: ECU %s, session %d, %d failing windows — intact\n\n",
		rec.ECU, rec.Session, len(rec.Fail.Entries))

	// --- 4. Degraded-mode objective in the DSE. ----------------------
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		log.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	ex.Robust = objective.RobustConfig{ErrorRate: 1e-5}
	front, err := ex.Run(moea.Options{PopSize: 24, Generations: 12, Seed: 3, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("robust DSE (BER 1e-5): %d Pareto solutions with a 4th objective\n", len(front.Solutions))
	for i, s := range front.Solutions {
		if i == 4 {
			fmt.Printf("  ... %d more\n", len(front.Solutions)-4)
			break
		}
		fmt.Printf("  cost %.1f  quality %.3f  shut-off %.1f ms  robust %.1f ms (miss p=%.3g)\n",
			s.Objectives.CostTotal, s.Objectives.TestQuality, s.Objectives.ShutOffMS,
			s.Objectives.RobustMS, s.Objectives.RobustMissProb)
	}
}

// diagFrames is the mirrored own-message slot set carrying the
// diagnosis payload in steps 1–3.
func diagFrames() []can.Frame {
	return []can.Frame{
		{ID: "own0", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "own1", Priority: 3, Payload: 8, PeriodMS: 20},
		{ID: "own2", Priority: 5, Payload: 8, PeriodMS: 50},
	}
}
