// Partial-networking study (Section I): BIST sessions may run right
// before an ECU enters power-down under AUTOSAR partial networking, but
// only if the shut-off time stays within budget. This example evaluates
// Eq. (5) for every Table I profile under local and gateway pattern
// storage and reports which profiles fit a given budget.
//
//	go run ./examples/partialnet [-budget 2] [-messages 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/schedule"
)

func main() {
	budget := flag.Float64("budget", 2, "shut-off budget in seconds before power-down")
	nMsgs := flag.Int("messages", 3, "functional messages of the ECU (mirrored bandwidth)")
	flag.Parse()

	// A typical ECU message set: 8-byte frames at 10/20/100 ms.
	periods := []float64{10, 20, 100}
	var frames []can.Frame
	for i := 0; i < *nMsgs; i++ {
		frames = append(frames, can.Frame{
			ID: fmt.Sprintf("c%d", i), Priority: i + 1, Payload: 8,
			PeriodMS: periods[i%len(periods)],
		})
	}
	bw := 0.0
	for _, f := range frames {
		bw += f.BandwidthBytesPerMS()
	}
	fmt.Printf("mirrored bandwidth: %.2f bytes/ms over %d functional messages\n", bw, len(frames))
	fmt.Printf("partial-networking shut-off budget: %.1f s\n\n", *budget)

	var rows [][]string
	okLocal, okGateway := 0, 0
	for _, p := range casestudy.TableI() {
		local := p.RuntimeMS
		q := can.TransferTimeMS(p.DataBytes, frames)
		gateway := p.RuntimeMS + q

		localOK := local <= *budget*1000
		gwOK := gateway <= *budget*1000
		if localOK {
			okLocal++
		}
		if gwOK {
			okGateway++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Number),
			fmt.Sprintf("%d", p.PRPs),
			fmt.Sprintf("%.2f", p.Coverage*100),
			fmt.Sprintf("%.3f", local/1000),
			verdict(localOK),
			fmt.Sprintf("%.1f", gateway/1000),
			verdict(gwOK),
		})
	}
	report.Table(os.Stdout, []string{
		"profile", "PRPs", "c [%]", "local shut-off [s]", "local ok",
		"gateway shut-off [s]", "gateway ok",
	}, rows)

	fmt.Printf("\n%d of 36 profiles fit the budget with local storage, %d with gateway storage.\n", okLocal, okGateway)

	// Periodic testing spreads a too-large transfer across parking
	// events (package schedule): how many events does each storage
	// policy need on a concrete subnet?
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partialnet:", err)
		os.Exit(1)
	}
	fmt.Printf("\nperiodic testing on a 3-ECU subnet (budget %.1f s per parking event):\n", *budget)
	for _, mode := range []struct {
		name   string
		choice int
	}{{"local storage", 1}, {"gateway storage", -1}} {
		dec, err := core.NewGreedyDecoder(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partialnet:", err)
			os.Exit(1)
		}
		dec.StorageChoice = mode.choice
		g := make([]float64, dec.GenotypeLen())
		for i := range g {
			g[i] = 0.9
		}
		x, err := dec.Decode(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partialnet:", err)
			os.Exit(1)
		}
		plan := schedule.PeriodicTest(x, *budget*1000)
		if plan.Complete {
			fmt.Printf("  %-16s complete, worst-case test latency %d parking event(s)\n", mode.name+":", plan.LatencyEvents)
		} else {
			fmt.Printf("  %-16s INCOMPLETE within the window\n", mode.name+":")
		}
		for _, p := range plan.PerECU {
			fmt.Printf("    %s profile %d: transfer %.1f s + session %.3f s -> %d event(s), feasible=%v\n",
				p.ECU, p.Profile, p.TransferMS/1000, p.SessionMS/1000, p.Events, p.Feasible)
		}
		for _, l := range schedule.DetectionLatencies(plan) {
			fmt.Printf("    %s fault-detection latency: worst %d, expected %.1f event(s)\n",
				l.ECU, l.WorstEvents, l.ExpectedEvents)
		}
	}

	fmt.Println("\nConclusion: partial networking demands local pattern storage (or a fast TAM) —")
	fmt.Println("exactly the cost/shut-off tradeoff the design space exploration navigates.")
}

func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
