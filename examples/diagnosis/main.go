// Diagnosis walk-through: a fleet of ECUs runs STUMPS BIST sessions
// during operational shut-off; one carries an injected stuck-at fault.
// The gateway collects the fail data, identifies the faulty ECU
// (workshop repair), and logic diagnosis narrows the fault location
// inside the IC (failure analysis).
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"repro/internal/diagnosis"
	"repro/internal/faultsim"
	"repro/internal/gateway"
	"repro/internal/netlist"
	"repro/internal/stumps"
)

func main() {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 42, WindowPatterns: 16, RestoreCycles: 200, TestClockHz: 40e6}
	const nPatterns = 256

	// A fleet of five ECUs, each with its own CUT instance (different
	// synthesis seed per ECU) and BIST session.
	type ecu struct {
		name    string
		cut     *netlist.Circuit
		session *stumps.Session
	}
	fleet := make([]ecu, 5)
	for i := range fleet {
		cut := netlist.ScanCUT(int64(100+i), cfg.Chains, cfg.ChainLen, 4)
		s, err := stumps.NewSession(cut, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fleet[i] = ecu{name: fmt.Sprintf("ecu%02d", i+1), cut: cut, session: s}
		st := cut.Stats()
		fmt.Printf("%s: CUT with %d gates, %d collapsed faults, session %.3f ms for %d patterns\n",
			fleet[i].name, st.Gates, st.Faults, s.SessionTimeMS(nPatterns), nPatterns)
	}

	// Pick a fault in ecu03 that the session provably detects.
	victim := &fleet[2]
	faults := netlist.CollapsedFaults(victim.cut)
	fs := faultsim.NewFaultSim(victim.cut, faults)
	prpg, err := stumps.NewPRPG(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.RunCoverage(prpg, nPatterns); err != nil {
		log.Fatal(err)
	}
	dets := fs.Detections()
	if len(dets) == 0 {
		log.Fatal("no detectable fault in the victim CUT")
	}
	// The dictionary below covers the first 64 detected faults; inject
	// one from the middle of that candidate set.
	nCand := len(dets)
	if nCand > 64 {
		nCand = 64
	}
	injected := dets[nCand/2].Fault
	fmt.Printf("\ninjecting %v into %s\n", injected, victim.name)

	// Every ECU runs its BIST session during operational shut-off and
	// ships fail data to the gateway's central fail memory.
	var collector gateway.Collector
	var reports []diagnosis.ECUReport
	for i := range fleet {
		var fd stumps.FailData
		if &fleet[i] == victim {
			fd, err = fleet[i].session.RunDiagnostic(nPatterns, injected)
		} else {
			// Fault-free ECUs match the golden signatures.
			fd = stumps.FailData{Windows: nPatterns / cfg.WindowPatterns}
		}
		if err != nil {
			log.Fatal(err)
		}
		collector.Ingest(fleet[i].name, fd)
		reports = append(reports, diagnosis.ECUReport{ECU: fleet[i].name, Fail: fd})
		fmt.Printf("%s fail data: %d of %d windows failing (%d bytes)\n",
			fleet[i].name, len(fd.Entries), fd.Windows, fd.SizeBytes(32))
	}
	fmt.Printf("gateway fail memory: %d bytes for %d sessions\n",
		collector.StorageBytes(), len(collector.Records()))

	// Workshop repair: which unit to replace? (Read straight from the
	// gateway; the off-board export round-trips losslessly.)
	blob, err := collector.Export()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := gateway.Import(blob); err != nil {
		log.Fatal(err)
	}
	located := collector.FailingECUs()
	fmt.Printf("\nworkshop repair: replace %v (exported %d bytes for failure analysis)\n", located, len(blob))

	// Failure analysis: diagnose the fault inside the returned IC from
	// the few shipped signatures, using a dictionary over the faults the
	// session can detect.
	var candidates []netlist.Fault
	for _, d := range dets {
		candidates = append(candidates, d.Fault)
		if len(candidates) == 64 {
			break
		}
	}
	dict, err := diagnosis.BuildDictionary(victim.session, candidates, nPatterns)
	if err != nil {
		log.Fatal(err)
	}
	var victimFail stumps.FailData
	for _, r := range reports {
		if r.ECU == victim.name {
			victimFail = r.Fail
		}
	}
	ranked := dict.Diagnose(victimFail)
	fmt.Printf("\nlogic diagnosis: %d candidates, top matches:\n", len(ranked))
	for i, c := range ranked {
		if i == 5 || c.Score < ranked[0].Score {
			break
		}
		marker := ""
		if c.Fault == injected {
			marker = "   <-- injected fault"
		}
		fmt.Printf("  %-14v score %.2f%s\n", c.Fault, c.Score, marker)
	}

	// Section I motivation: functional tests would have missed much of
	// this fault population.
	cmp, err := diagnosis.CompareFunctionalVsStructural(victim.cut, cfg, nPatterns, nPatterns, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional-style tests: %.1f%% structural coverage; BIST: %.1f%% (paper cites ~47%% for functional)\n",
		cmp.FunctionalCoverage*100, cmp.StructuralCoverage*100)
}
