// Quickstart: explore a reduced 3-ECU subnet and print the resulting
// cost / test-quality / shut-off tradeoffs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/moea"
	"repro/internal/objective"
	"repro/internal/report"
)

func main() {
	// 1. Build a specification: 3 ECUs and a gateway on one CAN bus, a
	//    sensor→processing→actuator chain, and 4 Table I BIST profiles
	//    per ECU.
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: %d tasks, %d messages, %d resources, %d mapping edges\n",
		spec.App.NumTasks(), spec.App.NumMessages(), spec.Arch.NumResources(), len(spec.Mappings()))

	// 2. Attach the fast greedy decoder and run the exploration.
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		log.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	res, err := ex.Run(moea.Options{PopSize: 48, Generations: 40, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the Pareto front.
	fmt.Println()
	report.WriteSummary(os.Stdout, res)
	fmt.Println()
	report.WriteFig5(os.Stdout, res, 20_000)

	// 4. Look inside one implementation: where is everything bound?
	best, ok := res.BestQualityWithin(res.BaselineCost(), 0.05)
	if !ok {
		fmt.Println("\nno implementation within 5% of baseline cost")
		return
	}
	fmt.Printf("\nimplementation with %.1f%% test quality at cost %.0f:\n",
		best.Objectives.TestQuality*100, best.Objectives.CostTotal)
	x := best.Impl
	for ecu, bT := range x.SelectedBIST() {
		bD := spec.DataTaskFor(bT)
		storage := x.Binding[bD.ID]
		where := "locally"
		if storage == spec.Gateway {
			where = "at the gateway"
		}
		q := objective.TransferTimeMS(x, bD, ecu)
		fmt.Printf("  %s: profile %d (%.2f%% coverage, %.2f ms session), %d bytes stored %s",
			ecu, bT.Profile, bT.Coverage*100, bT.WCETms, bD.MemBytes, where)
		if storage != ecu {
			fmt.Printf(", Eq.(1) transfer %.1f s", q/1000)
		}
		fmt.Println()
	}
	for _, r := range x.AllocatedResources() {
		if spec.Arch.Resource(r).Kind == model.KindECU {
			if _, tested := x.SelectedBIST()[r]; !tested {
				fmt.Printf("  %s: no BIST selected\n", r)
			}
		}
	}
}
