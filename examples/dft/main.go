// DfT tour: the complete design-for-test substrate of the
// reproduction, end to end on one circuit —
//
//  1. a sequential design is scan-inserted (SeqBuilder → full-scan core),
//
//  2. exported and re-imported through the ISCAS .bench format,
//
//  3. characterized into mixed-mode BIST profiles (LFSR fault
//     simulation + PODEM top-off),
//
//  4. with the deterministic cubes compressed into LFSR reseeding
//     seeds, and
//
//  5. a STUMPS session producing the fail data a faulty device would
//     ship to the gateway.
//
//     go run ./examples/dft
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/atpg"
	"repro/internal/bistgen"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/reseed"
	"repro/internal/stumps"
)

func main() {
	// 1. Sequential design → full-scan core.
	seq := netlist.Counter(22) // 22 flops + enable = 23 cells
	core, layout, err := seq.BuildFullScan(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan insertion: %d cells in %d chains of %d (%d pad)\n",
		core.NumInputs(), layout.Chains, layout.ChainLen, len(layout.PadCells))

	// 2. Round-trip through the .bench exchange format.
	var bench strings.Builder
	if err := netlist.WriteBench(&bench, core); err != nil {
		log.Fatal(err)
	}
	cut, err := netlist.ParseBench("counter22.scan", strings.NewReader(bench.String()))
	if err != nil {
		log.Fatal(err)
	}
	st := cut.Stats()
	fmt.Printf(".bench round-trip: %d gates, %d collapsed faults\n\n", st.Gates, st.Faults)

	// 3. Mixed-mode BIST profiles.
	cfg := stumps.Config{
		Chains: layout.Chains, ChainLen: layout.ChainLen, Seed: 7,
		WindowPatterns: 32, RestoreCycles: 100, TestClockHz: 40e6,
	}
	gen, err := bistgen.New(cut, bistgen.Options{Scan: cfg, MaxBacktracks: 200, MeasureTransition: true})
	if err != nil {
		log.Fatal(err)
	}
	profiles, err := gen.Characterize([]int{32, 256}, bistgen.DefaultTargets())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range profiles {
		fmt.Printf("%v  (transition %.1f%%)\n", p, p.TransitionCov*100)
	}

	// 4. Deterministic cube → reseeding seed → verified expansion.
	faults := layout.TestableFaults(cut, netlist.CollapsedFaults(cut))
	podem := atpg.NewGenerator(cut, 200)
	enc, err := reseed.NewEncoder(64, layout.Chains, layout.ChainLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	encoded := 0
	for _, f := range faults {
		cube, status := podem.Generate(f)
		if status != atpg.Detected {
			continue
		}
		seed, err := enc.EncodeCube(cube)
		if err != nil {
			continue
		}
		if !enc.Verify(cube, seed) {
			log.Fatalf("seed for %v does not reproduce its cube", f)
		}
		if encoded == 0 {
			fmt.Printf("reseeding: fault %v, cube %s (%d care bits) -> %d-bit seed\n",
				f, cube, cube.CareBits(), enc.D.Width)
		}
		encoded++
		if encoded == 16 {
			break
		}
	}
	fmt.Printf("reseeding: %d cubes encoded at width %d\n\n", encoded, enc.D.Width)

	// 5. STUMPS session with an injected fault: the fail data the ECU
	//    would ship to the gateway during operational shut-off.
	session, err := stumps.NewSession(cut, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fs := faultsim.NewFaultSim(cut, faults)
	prpg, err := stumps.NewPRPG(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.RunCoverage(prpg, 256); err != nil {
		log.Fatal(err)
	}
	dets := fs.Detections()
	if len(dets) == 0 {
		log.Fatal("no detectable fault")
	}
	rng := rand.New(rand.NewSource(1))
	injected := dets[rng.Intn(len(dets))].Fault
	fd, err := session.RunDiagnostic(256, injected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: injected %v -> %d of %d windows fail, %d bytes of fail data (session %.3f ms)\n",
		injected, len(fd.Entries), fd.Windows, fd.SizeBytes(cfg.MISRWidth), session.SessionTimeMS(256))
}
