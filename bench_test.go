package repro

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bistgen"
	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/dtc"
	"repro/internal/faultsim"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/moea"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/reseed"
	"repro/internal/schedule"
	"repro/internal/simulate"
	"repro/internal/stumps"
)

// --- E1: Table I — BIST profile characterization -----------------------

// BenchmarkTableI_ProfileCharacterization measures the full mixed-mode
// characterization flow (LFSR fault simulation + PODEM top-off) that
// regenerates the shape of the paper's Table I on a synthetic CUT.
func BenchmarkTableI_ProfileCharacterization(b *testing.B) {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6}
	cut := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := bistgen.New(cut, bistgen.Options{Scan: cfg, MaxBacktracks: 150})
		if err != nil {
			b.Fatal(err)
		}
		profiles, err := gen.Characterize([]int{64, 256}, bistgen.DefaultTargets())
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 8 {
			b.Fatalf("profiles = %d", len(profiles))
		}
	}
}

// --- E2: Fig. 5 — the design space exploration --------------------------

// BenchmarkFig5_DSE runs the three-objective exploration on the full
// case study (15 ECUs × 36 profiles) and reports evaluation throughput;
// the paper evaluated 100,000 implementations in ~29 minutes.
func BenchmarkFig5_DSE(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		res, err := ex.Run(moea.Options{PopSize: 64, Generations: 15, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Evaluations
	}
	b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
}

// --- E3: Fig. 6 — gateway vs distributed memory split -------------------

func BenchmarkFig6_MemorySplit(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 8})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.NewExplorer(spec, dec).Run(moea.Options{PopSize: 32, Generations: 10, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range res.Solutions {
			core.MemorySplitOf(s)
		}
	}
}

// --- E4: headline — evaluation throughput -------------------------------

// BenchmarkEvalThroughput measures one decode + objective evaluation on
// the full case study. The paper's rate is ~57 evals/s (100k in 29 min)
// on 2013 hardware.
func BenchmarkEvalThroughput(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	rng := rand.New(rand.NewSource(1))
	genotypes := make([][]float64, 64)
	for i := range genotypes {
		g := make([]float64, dec.GenotypeLen())
		for j := range g {
			g[j] = rng.Float64()
		}
		genotypes[i] = g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Evaluate(genotypes[i%len(genotypes)])
	}
}

// BenchmarkDecodeEvaluate measures the full per-candidate hot loop of
// the exploration — SAT decode (genotype → branching → PB solver →
// implementation) plus the three-objective evaluation — on the paper's
// case study encoding (4 profiles per ECU). This is the path the
// counter-based propagator, the reusable decoder state and the indexed
// objectives optimize; -benchmem shows the allocation trajectory.
func BenchmarkDecodeEvaluate(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewSATDecoder(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	rng := rand.New(rand.NewSource(1))
	genotypes := make([][]float64, 64)
	for i := range genotypes {
		g := make([]float64, dec.GenotypeLen())
		for j := range g {
			g[j] = rng.Float64()
		}
		genotypes[i] = g
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Evaluate(genotypes[i%len(genotypes)])
	}
}

// BenchmarkDecodeEvaluateObs is the hot loop of BenchmarkDecodeEvaluate
// with a live tracer (event recording on), quantifying the per-span
// metering overhead against the untraced baseline. The gated baseline
// stays the untraced variant — this one is informational.
func BenchmarkDecodeEvaluateObs(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewSATDecoder(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	ex.Obs = obs.NewTracer(obs.NewRegistry(), obs.TracerConfig{Record: true, BufferCap: 1024})
	rng := rand.New(rand.NewSource(1))
	genotypes := make([][]float64, 64)
	for i := range genotypes {
		g := make([]float64, dec.GenotypeLen())
		for j := range g {
			g[j] = rng.Float64()
		}
		genotypes[i] = g
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Evaluate(genotypes[i%len(genotypes)])
	}
}

// BenchmarkDSEParallel sweeps the MOEA worker count on the full case
// study so the per-worker decoder-state reuse shows up in the bench
// trajectory. Fronts are identical across the sweep; see
// TestExplorerWorkerSweepDeterministic.
func BenchmarkDSEParallel(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	workerCounts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 && n != 8 {
		workerCounts = append(workerCounts, n) // e.g. 16 on a 16-core runner
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			evals := 0
			for i := 0; i < b.N; i++ {
				res, err := ex.Run(moea.Options{PopSize: 64, Generations: 10, Seed: int64(i + 1), Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				evals += res.Evaluations
			}
			b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// BenchmarkDSETelemetry is BenchmarkDSEParallel's all-core case with
// the per-generation telemetry stream enabled (throughput, archive
// size, hypervolume, decode/solver counters) — quantifying the
// observability overhead against the matching workers=N DSEParallel
// sub-benchmark. Checkpoint durability is benchmarked separately
// (BenchmarkDSECheckpoint): its cost is one fsync per CheckpointEvery
// generations, amortized by cadence rather than per-generation.
func BenchmarkDSETelemetry(b *testing.B) {
	benchDSERunControl(b, &core.RunControl{OnProgress: func(core.Progress) {}})
}

// BenchmarkDSECheckpoint measures periodic checkpointing alone (atomic
// write + fsync + rename every 5 of 10 generations — a deliberately
// aggressive cadence; real campaigns checkpoint far less often relative
// to generation time).
func BenchmarkDSECheckpoint(b *testing.B) {
	benchDSERunControl(b, &core.RunControl{
		CheckpointPath:  filepath.Join(b.TempDir(), "cp.json"),
		CheckpointEvery: 5,
	})
}

func benchDSERunControl(b *testing.B, rc *core.RunControl) {
	spec, err := casestudy.Build(casestudy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	w := runtime.GOMAXPROCS(0)
	evals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.RunContext(context.Background(), moea.Options{PopSize: 64, Generations: 10, Seed: int64(i + 1), Workers: w}, rc)
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Evaluations
	}
	b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkIslandEpoch measures the unit the process-sharded
// orchestrator schedules: one migration epoch of a 4-island campaign on
// the full case study, stepped shard by shard (EpochStep, 2 shards) and
// merged centrally (MergeShards), swept over worker counts. Each
// iteration re-steps the same epoch from the same post-migration
// checkpoint, so the work includes the per-epoch resume rebuild the
// worker processes pay — the honest critical path of an orchestrated
// campaign. evals/s counts the epoch's campaign evaluations (islands ×
// pop × migrate-every); rebuild re-evaluations ride along as overhead.
func BenchmarkIslandEpoch(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	ic := core.IslandConfig{Islands: 4, MigrateEvery: 5, Migrants: 4}
	iopt := moea.IslandOptions{Islands: ic.Islands, MigrateEvery: ic.MigrateEvery, Migrants: ic.Migrants}
	step := func(b *testing.B, opt moea.Options, full *moea.IslandCheckpoint, procs int) *moea.IslandCheckpoint {
		shards := make([]*moea.IslandShard, procs)
		for k := range shards {
			first, count := moea.ShardRange(ic.Islands, procs, k)
			sh, err := ex.EpochStep(context.Background(), opt, ic, full, first, count)
			if err != nil {
				b.Fatal(err)
			}
			shards[k] = sh
		}
		merged, _, err := moea.MergeShards(shards, iopt)
		if err != nil {
			b.Fatal(err)
		}
		return merged
	}
	bootOpt := moea.Options{PopSize: 32, Generations: 15, Seed: 1, Workers: runtime.GOMAXPROCS(0)}
	full := step(b, bootOpt, nil, 2) // bootstrap epoch 0 once
	epochEvals := ic.Islands * bootOpt.PopSize * ic.MigrateEvery
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := bootOpt
			opt.Workers = w
			for i := 0; i < b.N; i++ {
				step(b, opt, full, 2)
			}
			b.ReportMetric(float64(epochEvals*b.N)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// --- E5: Eq. (1) and non-intrusive mirroring -----------------------------

func BenchmarkEq1_TransferTime(b *testing.B) {
	frames := []can.Frame{
		{ID: "c1", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 2, Payload: 8, PeriodMS: 20},
		{ID: "c3", Priority: 3, Payload: 8, PeriodMS: 100},
	}
	profiles := casestudy.TableI()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			can.TransferTimeMS(p.DataBytes, frames)
		}
	}
}

// BenchmarkMirrorVerification measures the response-time analysis that
// certifies mirroring as non-intrusive (Fig. 4 claim).
func BenchmarkMirrorVerification(b *testing.B) {
	bus := can.Bus{BitRate: 500_000}
	var own, others []can.Frame
	for i := 0; i < 4; i++ {
		own = append(own, can.Frame{ID: string(rune('a' + i)), Priority: 1 + 2*i, Payload: 8, PeriodMS: 20})
	}
	for i := 0; i < 12; i++ {
		others = append(others, can.Frame{ID: string(rune('m' + i)), Priority: 2 + 2*i, Payload: 8, PeriodMS: 50})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := can.VerifyNonIntrusive(bus, own, others)
		if err != nil || !rep.OK() {
			b.Fatalf("rep=%+v err=%v", rep, err)
		}
	}
}

// --- E6: functional vs structural coverage ------------------------------

func BenchmarkFunctionalVsStructural(b *testing.B) {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 42, WindowPatterns: 16}
	cut := netlist.ScanCUT(100, cfg.Chains, cfg.ChainLen, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := diagnosis.CompareFunctionalVsStructural(cut, cfg, 256, 256, 7)
		if err != nil {
			b.Fatal(err)
		}
		if cmp.StructuralCoverage <= cmp.FunctionalCoverage {
			b.Fatal("structural must win")
		}
	}
}

// --- A1: ablation — storage placement -----------------------------------

func BenchmarkAblationStorage(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		choice int
	}{{"free", 0}, {"local-only", 1}, {"gateway-only", -1}} {
		b.Run(bc.name, func(b *testing.B) {
			dec, err := core.NewGreedyDecoder(spec)
			if err != nil {
				b.Fatal(err)
			}
			dec.StorageChoice = bc.choice
			ex := core.NewExplorer(spec, dec)
			for i := 0; i < b.N; i++ {
				if _, err := ex.Run(moea.Options{PopSize: 32, Generations: 8, Seed: int64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A2: ablation — SAT-decoding vs greedy decoding ----------------------

func BenchmarkAblationDecoder(b *testing.B) {
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	greedy, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	sat, err := core.NewSATDecoder(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		dec  core.Decoder
	}{{"greedy", greedy}, {"sat", sat}} {
		b.Run(bc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g := make([]float64, bc.dec.GenotypeLen())
			for i := 0; i < b.N; i++ {
				for j := range g {
					g[j] = rng.Float64()
				}
				if _, err := bc.dec.Decode(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ------------------------------------------

// BenchmarkFaultSimulation measures 64-pattern parallel fault
// simulation throughput on the profile-generation CUT.
func BenchmarkFaultSimulation(b *testing.B) {
	cut := netlist.ScanCUT(5, 8, 10, 4)
	faults := netlist.CollapsedFaults(cut)
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := faultsim.NewFaultSim(cut, faults)
		prpg, err := stumps.NewPRPG(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.RunCoverage(prpg, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSimParallel sweeps the fault-list worker count on a
// Table-I-scale case-study CUT (the bistprof default: 10 chains × 12
// cells, 4 gates per cell) so the sharded speedup is visible in the
// bench trajectory. Detections are byte-identical across the sweep; see
// TestFaultSimWorkerSweep.
func BenchmarkFaultSimParallel(b *testing.B) {
	cut := netlist.ScanCUT(5, 10, 12, 4)
	faults := netlist.CollapsedFaults(cut)
	cfg := stumps.Config{Chains: 10, ChainLen: 12, Seed: 17}
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs := faultsim.NewFaultSim(cut, faults).SetWorkers(w)
				prpg, err := stumps.NewPRPG(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fs.RunCoverage(prpg, 2048); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBISTSession measures a full STUMPS session with intermediate
// signatures.
func BenchmarkBISTSession(b *testing.B) {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32}
	cut := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	s, err := stumps.NewSession(cut, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Signatures(256, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extended substrates -------------------------------------------------

// BenchmarkReseedEncode measures GF(2) seed solving for sparse top-off
// cubes (the encoded deterministic test data of the STUMPS flow).
func BenchmarkReseedEncode(b *testing.B) {
	enc, err := reseed.NewEncoder(128, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cubes := make([]atpg.Cube, 16)
	for k := range cubes {
		c := make(atpg.Cube, 256)
		for i := range c {
			c[i] = atpg.X
		}
		for j := 0; j < 40; j++ {
			c[rng.Intn(256)] = atpg.FromBool(rng.Intn(2) == 1)
		}
		cubes[k] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := enc.EncodeSet(cubes)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Seeds) == 0 {
			b.Fatal("nothing encoded")
		}
	}
}

// BenchmarkBusSimulation measures the discrete-event CAN arbitration
// trace used for the Fig. 4 schedule-equivalence experiment (E8).
func BenchmarkBusSimulation(b *testing.B) {
	bus := can.Bus{BitRate: 500_000}
	var frames []can.Frame
	for i := 0; i < 20; i++ {
		frames = append(frames, can.Frame{
			ID: fmt.Sprintf("f%d", i), Priority: i + 1, Payload: 8,
			PeriodMS: []float64{10, 20, 50, 100}[i%4],
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, err := simulate.SimulateBus(bus, frames, 1000)
		if err != nil || len(trace) == 0 {
			b.Fatalf("trace %d err %v", len(trace), err)
		}
	}
}

// BenchmarkWorkshopRepairStudy measures the E7 DTC-vs-BIST comparison.
func BenchmarkWorkshopRepairStudy(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.9
	}
	x, err := dec.Decode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := dtc.FunctionalRepairStudy(x, 0.47)
		bi := dtc.BISTRepairStudy(x, 0.47)
		if bi.FirstTryRate <= f.FirstTryRate {
			b.Fatal("BIST lost the repair study")
		}
	}
}

// BenchmarkPeriodicSchedule measures the E9 parking-event planner.
func BenchmarkPeriodicSchedule(b *testing.B) {
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		b.Fatal(err)
	}
	dec.StorageChoice = -1
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.9
	}
	x, err := dec.Decode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := schedule.PeriodicTest(x, 2000)
		if len(plan.PerECU) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkSATDecodeCaseStudy measures one SAT-decoding pass on the
// case study's constraint system (4 profiles per ECU) — the paper's
// own evaluation path.
func BenchmarkSATDecodeCaseStudy(b *testing.B) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewSATDecoder(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	g := make([]float64, dec.GenotypeLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range g {
			g[j] = rng.Float64()
		}
		if _, err := dec.Decode(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: fault-tolerant transfer ---------------------------------------

// BenchmarkTransferUnderErrors measures the reliable gateway session
// (chunking, CRC verification, seeded error process, retransmission)
// delivering one BIST record across a lossy CAN segment.
func BenchmarkTransferUnderErrors(b *testing.B) {
	bus := can.Bus{Name: "diag", BitRate: 500_000}
	fd := stumps.FailData{Windows: 64}
	for w := 0; w < 16; w++ {
		fd.Entries = append(fd.Entries, stumps.FailEntry{Window: w, Got: uint64(0xdead0000 + w), Want: 0xbeef})
	}
	m := can.ErrorModel{BitErrorRate: 1e-3, Seed: 11}
	cfg := gateway.SessionConfig{ChunkBytes: 64, MaxRetries: 8, BackoffMS: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var collector gateway.Collector
		res, err := collector.IngestReliable("ecu01", fd, bus, m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Delivered {
			b.Fatalf("transfer failed: %+v", res)
		}
	}
}

// --- E15: fleet-scale ingest --------------------------------------------

// BenchmarkFleetIngest measures the sharded fleet service end to end:
// a seeded vehicle population streaming BIST records through the
// reliable session machinery into the lock-striped ingest path, swept
// over shard and worker counts to expose the contention profile.
func BenchmarkFleetIngest(b *testing.B) {
	cfg := fleet.PopulationConfig{
		Vehicles:       256,
		ECUs:           []string{"ecu01", "ecu02", "ecu03", "ecu04"},
		SessionsPerECU: 1,
		FailProb:       0.1,
		Seed:           11,
		ErrorRate:      1e-5,
	}
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				c := cfg
				c.Workers = workers
				b.ReportAllocs()
				sessions := 0
				for i := 0; i < b.N; i++ {
					srv := fleet.New(fleet.Config{Shards: shards})
					res, err := fleet.RunPopulation(context.Background(), srv, c)
					if err != nil {
						b.Fatal(err)
					}
					if res.Delivered != res.Sessions {
						b.Fatalf("degraded sessions under benchmark config: %+v", res)
					}
					sessions += res.Sessions
				}
				b.ReportMetric(float64(sessions)/b.Elapsed().Seconds(), "sessions/s")
			})
		}
	}
}

// --- E17: durable fleet persistence -------------------------------------

// BenchmarkFleetIngestDurable is BenchmarkFleetIngest with the WAL on:
// every session commit is framed, CRC'd, and group-commit-fsynced to a
// real data directory before it is acknowledged. Compared against
// FleetIngest it prices the durability guarantee; the group commit
// keeps the per-session cost roughly flat as workers grow.
func BenchmarkFleetIngestDurable(b *testing.B) {
	cfg := fleet.PopulationConfig{
		Vehicles:       256,
		ECUs:           []string{"ecu01", "ecu02", "ecu03", "ecu04"},
		SessionsPerECU: 1,
		FailProb:       0.1,
		Seed:           11,
		ErrorRate:      1e-5,
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=8/workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			b.ReportAllocs()
			sessions := 0
			for i := 0; i < b.N; i++ {
				srv := fleet.New(fleet.Config{Shards: 8})
				if _, err := srv.OpenDurable(fleet.DurableConfig{
					Dir: filepath.Join(b.TempDir(), "data"),
				}); err != nil {
					b.Fatal(err)
				}
				res, err := fleet.RunPopulation(context.Background(), srv, c)
				if err != nil {
					b.Fatal(err)
				}
				if res.Delivered != res.Sessions {
					b.Fatalf("degraded sessions under benchmark config: %+v", res)
				}
				if err := srv.CloseDurable(); err != nil {
					b.Fatal(err)
				}
				sessions += res.Sessions
			}
			b.ReportMetric(float64(sessions)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}

// BenchmarkFleetRecovery measures cold-start recovery: replaying a
// WAL-only data directory (no snapshot, the worst case) of a full
// population back into an empty server.
func BenchmarkFleetRecovery(b *testing.B) {
	cfg := fleet.PopulationConfig{
		Vehicles:       256,
		ECUs:           []string{"ecu01", "ecu02", "ecu03", "ecu04"},
		SessionsPerECU: 1,
		FailProb:       0.1,
		Seed:           11,
		ErrorRate:      1e-5,
		Workers:        8,
	}
	dir := filepath.Join(b.TempDir(), "data")
	seedSrv := fleet.New(fleet.Config{Shards: 8})
	// SnapshotEvery < 0 disables snapshots entirely: recovery must
	// replay every commit from the log.
	if _, err := seedSrv.OpenDurable(fleet.DurableConfig{Dir: dir, SnapshotEvery: -1}); err != nil {
		b.Fatal(err)
	}
	res, err := fleet.RunPopulation(context.Background(), seedSrv, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := seedSrv.CloseDurable(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := fleet.New(fleet.Config{Shards: 8})
		rec, err := srv.OpenDurable(fleet.DurableConfig{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if rec.Entries != res.Sessions {
			b.Fatalf("recovered %d entries, want %d", rec.Entries, res.Sessions)
		}
		b.StopTimer()
		srv.KillDurable() // leave the log untouched for the next iteration
		b.StartTimer()
	}
	b.ReportMetric(float64(res.Sessions), "sessions")
}
