// Package repro reproduces "Non-Intrusive Integration of Advanced
// Diagnosis Features in Automotive E/E-Architectures" (Abelein et al.,
// DATE 2014): a design space exploration that integrates BIST-based
// structural diagnosis into automotive E/E-architectures without
// affecting functional applications or certified bus schedules.
//
// The library lives under internal/ (one package per subsystem, see
// DESIGN.md), the executables under cmd/, runnable walk-throughs under
// examples/, and the per-table/figure benchmark harness in
// bench_test.go and experiments_test.go at the repository root.
package repro
